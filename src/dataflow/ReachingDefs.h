//===- dataflow/ReachingDefs.h - Def-use chains -----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic reaching-definitions analysis over a function's Cfg, producing
/// the def-use chains from which the static program dependence graph draws
/// its data-dependence edges (§4.1). Definition points:
///
///  * the ENTRY node defines every variable (parameters arrive defined;
///    globals carry values from before the call; an uninitialized local
///    read is thus reported as depending on ENTRY),
///  * a statement defines the variables it writes directly,
///  * a call statement additionally defines MOD(callee) — the
///    interprocedural component the paper gets from [2].
///
/// Kills are strong only for direct scalar writes and whole-array
/// declarations; array element stores and call-MOD effects are weak (may-
/// writes), so earlier definitions keep reaching.
///
/// Templated over the set representation for experiment E6; sets here range
/// over dense definition ids, not variable ids.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_DATAFLOW_REACHINGDEFS_H
#define PPD_DATAFLOW_REACHINGDEFS_H

#include "cfg/Cfg.h"
#include "dataflow/ModRef.h"
#include "sema/Accesses.h"
#include "sema/Symbols.h"
#include "support/VarSet.h"

#include <algorithm>
#include <vector>

namespace ppd {

/// One definition point: CFG node \p Node may write \p Var.
struct Definition {
  CfgNodeId Node;
  VarId Var;
  bool Strong; ///< definitely overwrites the whole variable.
};

template <VariableSet Set> class ReachingDefs {
public:
  ReachingDefs(const Program &P, const SymbolTable &Symbols, const Cfg &G,
               const ModRefResult<Set> &MR)
      : Symbols(Symbols), G(G) {
    collectDefinitions(P, MR);
    solve();
  }

  const std::vector<Definition> &definitions() const { return Defs; }

  /// Definition ids reaching the entry of \p Node.
  const Set &reachIn(CfgNodeId Node) const { return In[Node]; }

  /// The definitions of \p Var that reach the entry of \p Use — i.e. the
  /// possible sources of a read of Var at Use.
  std::vector<unsigned> reachingDefsOf(CfgNodeId Use, VarId Var) const {
    std::vector<unsigned> Out;
    for (unsigned DefId : DefsOfVar[Var])
      if (In[Use].contains(DefId))
        Out.push_back(DefId);
    return Out;
  }

private:
  void collectDefinitions(const Program &P, const ModRefResult<Set> &MR) {
    DefsOfVar.resize(Symbols.numVars());
    Gen.resize(G.size());
    StrongKillVars.resize(G.size());

    auto AddDef = [&](CfgNodeId Node, VarId Var, bool Strong) {
      unsigned Id = unsigned(Defs.size());
      Defs.push_back({Node, Var, Strong});
      DefsOfVar[Var].push_back(Id);
      Gen[Node].insert(Id);
      if (Strong)
        StrongKillVars[Node].push_back(Var);
    };

    // ENTRY defines everything.
    for (VarId V = 0; V != Symbols.numVars(); ++V) {
      const VarInfo &Info = Symbols.var(V);
      bool Relevant = Info.isGlobal() ||
                      (Info.Func == &G.func() &&
                       (Info.Kind == VarKind::Param ||
                        Info.Kind == VarKind::Local));
      if (Relevant)
        AddDef(Cfg::EntryId, V, /*Strong=*/true);
    }

    for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
      const CfgNode &N = G.node(Node);
      if (N.Kind != CfgNodeKind::Stmt)
        continue;
      const Stmt *S = P.stmt(N.Stmt);
      StmtAccesses Acc = collectStmtAccesses(*S);
      for (VarId V : Acc.Writes) {
        const VarInfo &Info = Symbols.var(V);
        // Array element stores are weak updates; whole-array declarations
        // (zero-fill) and scalar stores are strong.
        bool Strong = !Info.isArray() || isa<VarDeclStmt>(S);
        AddDef(Node, V, Strong);
      }
      for (const FuncDecl *Callee : Acc.Callees)
        for (unsigned V : MR.Mod[Callee->Index].toVector())
          AddDef(Node, VarId(V), /*Strong=*/false);
    }
  }

  void solve() {
    In.resize(G.size());
    std::vector<Set> Out(G.size());

    // Precompute per-node kill sets (definition ids of strongly killed
    // vars, minus the node's own gens).
    std::vector<Set> Kill(G.size());
    for (CfgNodeId Node = 0; Node != G.size(); ++Node) {
      for (VarId V : StrongKillVars[Node])
        for (unsigned DefId : DefsOfVar[V])
          if (Defs[DefId].Node != Node)
            Kill[Node].insert(DefId);
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (CfgNodeId Node : G.reversePostOrder()) {
        Set NewIn;
        for (CfgNodeId Pred : G.node(Node).Preds)
          NewIn.unionWith(Out[Pred]);
        if (!(NewIn == In[Node])) {
          In[Node] = NewIn;
          Changed = true;
        }
        Set NewOut = NewIn;
        NewOut.subtract(Kill[Node]);
        NewOut.unionWith(Gen[Node]);
        if (!(NewOut == Out[Node])) {
          Out[Node] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  const SymbolTable &Symbols;
  const Cfg &G;
  std::vector<Definition> Defs;
  std::vector<std::vector<unsigned>> DefsOfVar; ///< by VarId.
  std::vector<Set> Gen;                          ///< by node.
  std::vector<std::vector<VarId>> StrongKillVars;
  std::vector<Set> In;
};

} // namespace ppd

#endif // PPD_DATAFLOW_REACHINGDEFS_H
