//===- trace/ReplayCache.h - Interval trace cache ---------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, byte-accounted LRU cache for regenerated interval traces.
/// Incremental tracing regenerates fine-grained traces on demand (§5.3);
/// an interactive session asks about the same intervals over and over
/// (every flowback step re-reads the neighborhood of the failure), so
/// memoizing the regenerated streams turns repeat queries into lookups.
///
/// The key is (process, log-interval id, override fingerprint): a replay
/// is a pure function of the log interval — plus the §5.7 what-if
/// overrides, which the fingerprint folds in so experimental replays
/// never alias the faithful one. Values are shared_ptrs, so an entry
/// evicted while a caller still holds it stays valid; eviction only drops
/// the cache's reference.
///
/// Sharding by key hash keeps the lock fine-grained when the parallel
/// replayer's workers fill the cache concurrently. Counters (hits,
/// misses, insertions, evictions, bytes) feed the debugger's `stats`
/// command and the E8 benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TRACE_REPLAYCACHE_H
#define PPD_TRACE_REPLAYCACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ppd {

/// Identity of one memoized replay.
struct ReplayKey {
  uint32_t Pid = 0;
  uint32_t Interval = 0;
  /// 0 for a faithful replay; a hash of the override list otherwise.
  uint64_t Fingerprint = 0;

  friend bool operator==(const ReplayKey &A, const ReplayKey &B) {
    return A.Pid == B.Pid && A.Interval == B.Interval &&
           A.Fingerprint == B.Fingerprint;
  }
};

struct ReplayKeyHash {
  size_t operator()(const ReplayKey &K) const {
    // splitmix64 over the packed fields: cheap and well distributed.
    uint64_t X = (uint64_t(K.Pid) << 32 | K.Interval) ^ K.Fingerprint;
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return size_t(X ^ (X >> 31));
  }
};

/// Aggregated counters across every shard.
struct ReplayCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  size_t Bytes = 0;
  size_t Entries = 0;
};

/// Sharded LRU map from ReplayKey to shared immutable values of type \p V.
/// Thread-safe; all locking is per-shard.
template <typename V> class ReplayCache {
public:
  /// \p CapacityBytes bounds the total accounted bytes (0 = unbounded);
  /// \p ShardCount is rounded up to at least 1.
  explicit ReplayCache(size_t CapacityBytes, unsigned ShardCount = 8)
      : Capacity(CapacityBytes), Shards(ShardCount ? ShardCount : 1) {}

  /// Returns the cached value and refreshes its recency, or null (counted
  /// as a miss).
  std::shared_ptr<const V> lookup(const ReplayKey &Key) {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      ++S.Misses;
      return nullptr;
    }
    ++S.Hits;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return It->second->Value;
  }

  /// lookup without the hit/miss accounting: the single-flight path
  /// re-checks the cache under its own lock before becoming the leader,
  /// and that internal probe must not show up in the stats a user's
  /// request pattern is read from.
  std::shared_ptr<const V> peek(const ReplayKey &Key) {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    if (It == S.Map.end())
      return nullptr;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return It->second->Value;
  }

  /// Inserts (or replaces) \p Value, accounted as \p Bytes, evicting
  /// least-recently-used entries of the same shard as needed.
  void insert(const ReplayKey &Key, std::shared_ptr<const V> Value,
              size_t Bytes) {
    Shard &S = shardOf(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      S.Bytes -= It->second->Bytes;
      S.Lru.erase(It->second);
      S.Map.erase(It);
    }
    S.Lru.push_front(Entry{Key, std::move(Value), Bytes});
    S.Map[Key] = S.Lru.begin();
    S.Bytes += Bytes;
    ++S.Insertions;
    if (Capacity == 0)
      return;
    // Per-shard share of the budget; never evict the entry just added.
    size_t ShardCapacity = Capacity / Shards.size();
    while (S.Bytes > ShardCapacity && S.Lru.size() > 1) {
      Entry &Victim = S.Lru.back();
      S.Bytes -= Victim.Bytes;
      S.Map.erase(Victim.Key);
      S.Lru.pop_back();
      ++S.Evictions;
    }
  }

  ReplayCacheStats stats() const {
    ReplayCacheStats Out;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      Out.Hits += S.Hits;
      Out.Misses += S.Misses;
      Out.Insertions += S.Insertions;
      Out.Evictions += S.Evictions;
      Out.Bytes += S.Bytes;
      Out.Entries += S.Lru.size();
    }
    return Out;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      S.Lru.clear();
      S.Map.clear();
      S.Bytes = 0;
    }
  }

  size_t capacityBytes() const { return Capacity; }

private:
  struct Entry {
    ReplayKey Key;
    std::shared_ptr<const V> Value;
    size_t Bytes = 0;
  };

  struct Shard {
    mutable std::mutex Mutex;
    std::list<Entry> Lru; ///< front = most recently used.
    std::unordered_map<ReplayKey, typename std::list<Entry>::iterator,
                       ReplayKeyHash>
        Map;
    size_t Bytes = 0;
    uint64_t Hits = 0, Misses = 0, Insertions = 0, Evictions = 0;
  };

  Shard &shardOf(const ReplayKey &Key) {
    return Shards[ReplayKeyHash()(Key) % Shards.size()];
  }

  size_t Capacity;
  std::vector<Shard> Shards;
};

} // namespace ppd

#endif // PPD_TRACE_REPLAYCACHE_H
