//===- trace/TraceEvent.h - Fine-grained execution traces -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fine-grained event stream the dynamic program dependence graph is
/// built from. Under incremental tracing these events are regenerated on
/// demand by replaying one log interval through the emulation package
/// (§5.3); under the full-tracing baseline of experiment E2 every process
/// produces them during execution, which is exactly the cost the paper's
/// mechanism exists to avoid.
///
/// One event is recorded per executed statement, carrying the values the
/// statement actually read and wrote (array accesses include the element
/// index). Call boundaries get their own events so calls can appear as
/// sub-graph nodes (§4.2); a skipped nested interval (Fig 5.2) records a
/// CallSkipped event holding the postlog-supplied return value.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TRACE_TRACEEVENT_H
#define PPD_TRACE_TRACEEVENT_H

#include "lang/Ast.h"
#include "support/SmallVec.h"

#include <cstdint>

namespace ppd {

/// One dynamic variable access.
struct TraceAccess {
  VarId Var = InvalidId;
  int64_t Value = 0;
  int64_t Index = -1; ///< array element, or -1 for scalars.

  friend bool operator==(const TraceAccess &A,
                         const TraceAccess &B) = default;
};

enum class TraceEventKind : uint8_t {
  Stmt,        ///< execution of one statement (singular node)
  CallBegin,   ///< user-function call entered (opens a sub-graph)
  CallEnd,     ///< call returned (closes the sub-graph; Value = result)
  CallSkipped, ///< nested logged interval applied from its postlog
               ///< instead of re-execution (Value = logged result)
};

struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::Stmt;
  uint32_t Pid = 0;
  /// Dense per-process event number, in execution order.
  uint32_t Index = 0;
  /// The statement executed (Stmt events) or the call site (Call* events).
  StmtId Stmt = InvalidId;
  /// Callee function index (Call* events).
  uint32_t Callee = InvalidId;
  /// Return value (CallEnd/CallSkipped).
  int64_t Value = 0;
  /// Argument values (CallBegin). Inline storage: events are constructed
  /// once per replayed statement, so a heap allocation per access list
  /// would put the allocator on the replay engines' hot path (it was
  /// ~half the per-statement cost of a warm replay before these were
  /// SmallVecs). Typical statements read one or two variables and write
  /// at most one; the spill path covers the rest.
  SmallVec<int64_t, 2> Args;
  SmallVec<TraceAccess, 2> Reads;
  SmallVec<TraceAccess, 1> Writes;
  /// Predicate outcome: set for if/while/for condition events.
  bool IsPredicate = false;
  bool BranchTaken = false;
  /// Position of the process's log cursor when this event was created —
  /// i.e. how many log records precede it. Locates the event's
  /// synchronization-unit instance / internal edge for cross-process
  /// dependence resolution (§6.3).
  uint32_t LogCursor = 0;

  /// Approximate serialized size — the currency of experiment E2.
  size_t byteSize() const {
    return 16 + 8 * Args.size() + 17 * (Reads.size() + Writes.size());
  }

  /// Field-wise equality: the determinism tests assert that cached,
  /// parallel, and fresh serial replays agree bit for bit.
  friend bool operator==(const TraceEvent &A, const TraceEvent &B) = default;
};

/// The events of one process, in execution order.
class TraceBuffer {
public:
  std::vector<TraceEvent> Events;

  TraceEvent &append(TraceEvent Event) {
    Event.Index = uint32_t(Events.size());
    Events.push_back(std::move(Event));
    return Events.back();
  }

  /// In-place append for the per-statement hot path: constructs the event
  /// directly in the buffer (no intermediate move of the ~200-byte
  /// event), numbered and defaulted to Stmt kind. Callers fill the rest.
  TraceEvent &emplace() {
    TraceEvent &E = Events.emplace_back();
    E.Index = uint32_t(Events.size() - 1);
    return E;
  }

  size_t byteSize() const {
    size_t Size = 0;
    for (const TraceEvent &E : Events)
      Size += E.byteSize();
    return Size;
  }
};

} // namespace ppd

#endif // PPD_TRACE_TRACEEVENT_H
