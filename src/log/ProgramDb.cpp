//===- log/ProgramDb.cpp - Persisted program database sidecar -------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//

#include "log/ProgramDb.h"

#include "compiler/CompiledProgram.h"
#include "log/LogIO.h"
#include "log/PageStore.h"
#include "pardyn/ParallelDynamicGraph.h"

#include <algorithm>
#include <cstdio>

using namespace ppd;

namespace {

constexpr uint32_t DbMagic = 0x42445050u; // "PPDB" on disk (little-endian).
constexpr uint32_t DbVersion = 2; // v2 added the parallel dynamic graph.

/// FNV-1a, the repo-wide cheap stable hash.
struct Fnv {
  uint64_t H = 0xcbf29ce484222325ull;
  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ull;
    }
  }
  void u64(uint64_t V) { bytes(&V, 8); }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  template <typename T> void vec(const std::vector<T> &V) {
    u64(V.size());
    for (const T &E : V)
      u64(uint64_t(E));
  }
};

uint64_t chunkHash(const Chunk &C) {
  Fnv F;
  F.u64(C.size());
  for (uint32_t Pc = 0; Pc != C.size(); ++Pc) {
    const Instr &I = C.at(Pc);
    F.u64(uint64_t(I.Opcode));
    F.u64(uint64_t(uint32_t(I.A)));
    F.u64(uint64_t(uint32_t(I.B)));
    F.u64(uint64_t(I.Imm));
    F.u64(C.stmtAt(Pc));
  }
  return F.H;
}

/// InvalidId (~0u) → 0, everything else shifts up one: the common "no
/// record / no parent" sentinel costs one varint byte.
uint64_t idCode(uint32_t Id) { return uint64_t(uint32_t(Id + 1)); }
uint32_t idDecode(uint64_t Code) { return uint32_t(Code) - 1; }

void writeIdVec(LogWriter &W, const std::vector<uint32_t> &V) {
  W.varint(V.size());
  for (uint32_t Id : V)
    W.varint(Id);
}

bool readIdVec(ByteReader &R, std::vector<uint32_t> &V) {
  uint64_t N = R.varint();
  if (!R.plausibleCount(N))
    return false;
  V.resize(N);
  for (uint32_t &Id : V)
    Id = uint32_t(R.varint());
  return R.ok();
}

} // namespace

std::string ppd::programDbPathFor(const std::string &LogPath) {
  return LogPath + ".ppdb";
}

const char *ppd::programDbStatusName(ProgramDbStatus Status) {
  switch (Status) {
  case ProgramDbStatus::Ok:
    return "ok";
  case ProgramDbStatus::Missing:
    return "missing";
  case ProgramDbStatus::Stale:
    return "stale";
  case ProgramDbStatus::Corrupt:
    return "corrupt";
  }
  return "?";
}

uint64_t ppd::programHash(const CompiledProgram &Prog) {
  Fnv F;
  F.u64(Prog.Funcs.size());
  for (const CompiledFunction &Fn : Prog.Funcs) {
    F.str(Fn.Name);
    F.u64(Fn.Index);
    F.u64(Fn.NumParams);
    F.u64(Fn.FrameSize);
    F.u64(Fn.Logged);
    F.u64(chunkHash(Fn.Object));
    F.u64(chunkHash(Fn.Emu));
  }
  F.u64(Prog.EBlocks.size());
  for (const EBlockInfo &EB : Prog.EBlocks) {
    F.u64(EB.Id);
    F.u64(EB.Func);
    F.u64(uint64_t(EB.Kind));
    F.u64(EB.ObjectEntryPc);
    F.u64(EB.EmuEntryPc);
    F.vec(EB.Used);
    F.vec(EB.Defined);
  }
  F.u64(Prog.Units.size());
  for (const UnitInfo &U : Prog.Units) {
    F.u64(U.Id);
    F.u64(U.Func);
    F.vec(U.SharedReads);
  }
  F.vec(Prog.SemInit);
  F.vec(Prog.ChanCapacity);
  F.u64(Prog.MainIndex);
  F.u64(Prog.Options.Instrument);
  return F.H;
}

bool ppd::writeProgramDb(const std::string &Path, const CompiledProgram &Prog,
                         const PageStore &Store, const LogIndex &Index,
                         const ParallelDynamicGraph *Graph) {
  LogWriter W;
  W.u32(DbMagic);
  W.u32(DbVersion);
  W.u64(programHash(Prog));

  // Per-function chunk hashes: redundant with the program hash, kept
  // separately so a staleness report can name *which* function changed.
  W.varint(Prog.Funcs.size());
  for (const CompiledFunction &Fn : Prog.Funcs) {
    W.u64(chunkHash(Fn.Object));
    W.u64(chunkHash(Fn.Emu));
  }

  // Def/use sites — the paper's program database proper.
  uint32_t NumVars = Prog.Symbols->numVars();
  W.varint(NumVars);
  for (VarId Var = 0; Var != NumVars; ++Var) {
    const VarSites &S = Prog.Database->sites(Var);
    writeIdVec(W, S.Defs);
    writeIdVec(W, S.Uses);
  }

  // E-block USED/DEFINED sets and static-graph unit edges.
  W.varint(Prog.EBlocks.size());
  for (const EBlockInfo &EB : Prog.EBlocks) {
    writeIdVec(W, EB.Used);
    writeIdVec(W, EB.Defined);
  }
  W.varint(Prog.Units.size());
  for (const UnitInfo &U : Prog.Units) {
    W.varint(U.Func);
    writeIdVec(W, U.SharedReads);
  }

  // Log shape: keys the sidecar to one exact log file.
  W.varint(Store.fileBytes());
  W.varint(Store.numProcs());
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    const PageStore::SectionMeta &M = Store.section(Pid);
    W.varint(M.Pid);
    W.varint(M.RootFunc);
    W.varint(M.Args.size());
    for (int64_t A : M.Args)
      W.svarint(A);
    W.varint(M.NumRecords);
    W.varint(M.PrelogCount);
    W.varint(M.EncodedBytes);
    W.varint(M.Offset);
  }

  // The persisted index: the expensive-to-derive artifact a warm open
  // adopts instead of skimming every section.
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    const std::vector<LogInterval> &Ivs = Index.intervals(Pid);
    W.varint(Ivs.size());
    for (const LogInterval &Iv : Ivs) {
      W.varint(Iv.EBlock);
      W.varint(Iv.PrelogRecord);
      W.varint(idCode(Iv.PostlogRecord));
      W.varint(idCode(Iv.Parent));
      W.varint(Iv.Depth);
      W.u8(Iv.ExitsFunction ? 1 : 0);
    }
    writeIdVec(W, Index.openIntervals(Pid));
  }

  // The persisted parallel dynamic graph (§6): per-process sync-node
  // rows and internal-edge READ/WRITE sets. Clocks and the seq lookup
  // are recomputed on adoption, so only what construction read from the
  // records is stored. Building it here (when the caller has none)
  // decodes sections one at a time — preparatory-phase cost, paid so a
  // warm open never scans record streams at all.
  std::unique_ptr<ParallelDynamicGraph> Built;
  if (!Graph) {
    Built = std::make_unique<ParallelDynamicGraph>(
        Prog.Symbols->NumSharedVars, Store.numProcs());
    for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
      ProcessLog PL;
      if (!Store.decodeSection(Pid, PL))
        return false;
      Built->addProcess(Pid, PL);
    }
    Built->finalize();
    Graph = Built.get();
  }
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    const std::vector<SyncNode> &Ns = Graph->nodes(Pid);
    W.varint(Ns.size());
    for (const SyncNode &N : Ns) {
      W.u8(uint8_t(N.Kind));
      W.varint(N.Object);
      W.varint(N.Seq);
      W.varint(N.PartnerSeq == NoPartner ? 0 : N.PartnerSeq + 1);
      W.varint(idCode(N.Stmt));
      W.varint(N.RecordIdx);
    }
    for (const InternalEdge &E : Graph->edges(Pid)) {
      writeIdVec(W, E.Reads.toVector());
      writeIdVec(W, E.Writes.toVector());
    }
  }

  // Atomic publish: a reader never sees a half-written sidecar.
  std::string TmpPath = Path + ".tmp";
  if (!W.writeFile(TmpPath))
    return false;
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}

ProgramDbStatus
ppd::readProgramDb(const std::string &Path, const CompiledProgram &Prog,
                   const PageStore &Store,
                   std::shared_ptr<const LogIndex> &IndexOut,
                   std::shared_ptr<const ParallelDynamicGraph> *GraphOut) {
  std::vector<uint8_t> Bytes;
  {
    FileHandle Probe(Path, "rb");
    if (!Probe)
      return ProgramDbStatus::Missing;
  }
  if (!readFileBytes(Path, Bytes))
    return ProgramDbStatus::Corrupt;

  ByteReader R(Bytes.data(), Bytes.size());
  if (R.u32() != DbMagic || !R.ok())
    return ProgramDbStatus::Corrupt;
  if (R.u32() != DbVersion)
    return ProgramDbStatus::Stale; // older tool wrote it; rebuild.
  if (R.u64() != programHash(Prog) || !R.ok())
    return ProgramDbStatus::Stale;

  // Every analysis table is compared field-for-field against the fresh
  // compile — the hash gates the fast path, the comparison makes a
  // collision harmless. Structural failures (bad counts, truncation) are
  // Corrupt; clean mismatches are Stale.
  uint64_t NumFuncs = R.varint();
  if (!R.plausibleCount(NumFuncs))
    return ProgramDbStatus::Corrupt;
  if (NumFuncs != Prog.Funcs.size())
    return ProgramDbStatus::Stale;
  for (const CompiledFunction &Fn : Prog.Funcs) {
    uint64_t ObjHash = R.u64();
    uint64_t EmuHash = R.u64();
    if (!R.ok())
      return ProgramDbStatus::Corrupt;
    if (ObjHash != chunkHash(Fn.Object) || EmuHash != chunkHash(Fn.Emu))
      return ProgramDbStatus::Stale;
  }

  uint64_t NumVars = R.varint();
  if (!R.plausibleCount(NumVars))
    return ProgramDbStatus::Corrupt;
  if (NumVars != Prog.Symbols->numVars())
    return ProgramDbStatus::Stale;
  std::vector<uint32_t> Ids;
  for (VarId Var = 0; Var != NumVars; ++Var) {
    const VarSites &S = Prog.Database->sites(Var);
    if (!readIdVec(R, Ids))
      return ProgramDbStatus::Corrupt;
    if (Ids != S.Defs)
      return ProgramDbStatus::Stale;
    if (!readIdVec(R, Ids))
      return ProgramDbStatus::Corrupt;
    if (Ids != S.Uses)
      return ProgramDbStatus::Stale;
  }

  uint64_t NumEBlocks = R.varint();
  if (!R.plausibleCount(NumEBlocks))
    return ProgramDbStatus::Corrupt;
  if (NumEBlocks != Prog.EBlocks.size())
    return ProgramDbStatus::Stale;
  for (const EBlockInfo &EB : Prog.EBlocks) {
    if (!readIdVec(R, Ids))
      return ProgramDbStatus::Corrupt;
    if (Ids != EB.Used)
      return ProgramDbStatus::Stale;
    if (!readIdVec(R, Ids))
      return ProgramDbStatus::Corrupt;
    if (Ids != EB.Defined)
      return ProgramDbStatus::Stale;
  }
  uint64_t NumUnits = R.varint();
  if (!R.plausibleCount(NumUnits))
    return ProgramDbStatus::Corrupt;
  if (NumUnits != Prog.Units.size())
    return ProgramDbStatus::Stale;
  for (const UnitInfo &U : Prog.Units) {
    uint64_t Func = R.varint();
    if (!R.ok())
      return ProgramDbStatus::Corrupt;
    if (Func != U.Func)
      return ProgramDbStatus::Stale;
    if (!readIdVec(R, Ids))
      return ProgramDbStatus::Corrupt;
    if (Ids != U.SharedReads)
      return ProgramDbStatus::Stale;
  }

  // Log shape: any difference means the sidecar describes another log
  // (or another version of this one).
  if (R.varint() != Store.fileBytes() || !R.ok())
    return R.ok() ? ProgramDbStatus::Stale : ProgramDbStatus::Corrupt;
  uint64_t NumProcs = R.varint();
  if (!R.plausibleCount(NumProcs))
    return ProgramDbStatus::Corrupt;
  if (NumProcs != Store.numProcs())
    return ProgramDbStatus::Stale;
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    const PageStore::SectionMeta &M = Store.section(Pid);
    if (R.varint() != M.Pid || R.varint() != M.RootFunc)
      return R.ok() ? ProgramDbStatus::Stale : ProgramDbStatus::Corrupt;
    uint64_t NumArgs = R.varint();
    if (!R.plausibleCount(NumArgs))
      return ProgramDbStatus::Corrupt;
    if (NumArgs != M.Args.size())
      return ProgramDbStatus::Stale;
    for (int64_t A : M.Args)
      if (R.svarint() != A)
        return R.ok() ? ProgramDbStatus::Stale : ProgramDbStatus::Corrupt;
    if (R.varint() != M.NumRecords || R.varint() != M.PrelogCount ||
        R.varint() != M.EncodedBytes || R.varint() != M.Offset)
      return R.ok() ? ProgramDbStatus::Stale : ProgramDbStatus::Corrupt;
  }

  // The persisted index. Sanity-check structural invariants so a corrupt
  // tail can never hand replay out-of-range record indices.
  std::vector<std::vector<LogInterval>> Intervals(Store.numProcs());
  std::vector<std::vector<uint32_t>> Open(Store.numProcs());
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    uint64_t NumRecords = Store.section(Pid).NumRecords;
    uint64_t NumIvs = R.varint();
    if (!R.plausibleCount(NumIvs))
      return ProgramDbStatus::Corrupt;
    if (NumIvs != Store.section(Pid).PrelogCount)
      return ProgramDbStatus::Stale;
    Intervals[Pid].resize(NumIvs);
    for (uint64_t I = 0; I != NumIvs; ++I) {
      LogInterval &Iv = Intervals[Pid][I];
      Iv.Index = uint32_t(I);
      Iv.EBlock = uint32_t(R.varint());
      Iv.PrelogRecord = uint32_t(R.varint());
      Iv.PostlogRecord = idDecode(R.varint());
      Iv.Parent = idDecode(R.varint());
      Iv.Depth = uint32_t(R.varint());
      Iv.ExitsFunction = R.u8() != 0;
      if (!R.ok())
        return ProgramDbStatus::Corrupt;
      if (Iv.PrelogRecord >= NumRecords ||
          (Iv.PostlogRecord != InvalidId && Iv.PostlogRecord >= NumRecords) ||
          (Iv.Parent != InvalidId && Iv.Parent >= I) ||
          Iv.EBlock >= Prog.EBlocks.size())
        return ProgramDbStatus::Corrupt;
    }
    if (!readIdVec(R, Open[Pid]))
      return ProgramDbStatus::Corrupt;
    for (uint32_t Idx : Open[Pid])
      if (Idx >= Intervals[Pid].size())
        return ProgramDbStatus::Corrupt;
  }
  // The persisted parallel dynamic graph. Bounds are enforced here —
  // kind range, record index inside the section, shared ids inside the
  // program's shared segment, partner seqs resolvable and strictly
  // earlier in the global order — so finalize() can never index out of
  // range on hostile bytes (its clock pass walks nodes in seq order and
  // dereferences partners unconditionally).
  uint32_t NumShared = Prog.Symbols->NumSharedVars;
  uint64_t TotalRecords = 0;
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid)
    TotalRecords += Store.section(Pid).NumRecords;
  std::vector<std::vector<SyncNode>> GNodes(Store.numProcs());
  std::vector<std::vector<InternalEdge>> GEdges(Store.numProcs());
  std::vector<uint64_t> Seqs;
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid) {
    uint64_t NumRecords = Store.section(Pid).NumRecords;
    uint64_t NumNodes = R.varint();
    if (!R.plausibleCount(NumNodes) || NumNodes > NumRecords)
      return ProgramDbStatus::Corrupt;
    GNodes[Pid].resize(NumNodes);
    for (uint64_t I = 0; I != NumNodes; ++I) {
      SyncNode &N = GNodes[Pid][I];
      uint8_t Kind = R.u8();
      N.Kind = SyncKind(Kind);
      N.Object = uint32_t(R.varint());
      N.Seq = R.varint();
      uint64_t Partner = R.varint();
      N.PartnerSeq = Partner == 0 ? NoPartner : Partner - 1;
      N.Stmt = idDecode(R.varint());
      N.RecordIdx = uint32_t(R.varint());
      if (!R.ok())
        return ProgramDbStatus::Corrupt;
      // Seq numbers a sync event, and every sync event is a record, so
      // TotalRecords bounds any honest value (the BySeq table finalize()
      // allocates is MaxSeq+1 entries — this check also caps it).
      if (Kind > uint8_t(SyncKind::Stopped) || N.RecordIdx >= NumRecords ||
          N.Seq > TotalRecords)
        return ProgramDbStatus::Corrupt;
      Seqs.push_back(N.Seq);
    }
    if (NumNodes != 0)
      GEdges[Pid].resize(NumNodes - 1);
    for (uint64_t I = 0; I + 1 < NumNodes; ++I) {
      InternalEdge &E = GEdges[Pid][I];
      E.Pid = Pid;
      E.EndNode = uint32_t(I + 1);
      E.Reads.reserveFor(NumShared);
      E.Writes.reserveFor(NumShared);
      if (!readIdVec(R, Ids))
        return ProgramDbStatus::Corrupt;
      for (uint32_t S : Ids) {
        if (S >= NumShared)
          return ProgramDbStatus::Corrupt;
        E.Reads.insert(S);
      }
      if (!readIdVec(R, Ids))
        return ProgramDbStatus::Corrupt;
      for (uint32_t S : Ids) {
        if (S >= NumShared)
          return ProgramDbStatus::Corrupt;
        E.Writes.insert(S);
      }
    }
  }
  std::sort(Seqs.begin(), Seqs.end());
  if (std::adjacent_find(Seqs.begin(), Seqs.end()) != Seqs.end())
    return ProgramDbStatus::Corrupt;
  for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid)
    for (const SyncNode &N : GNodes[Pid])
      if (N.PartnerSeq != NoPartner &&
          (N.PartnerSeq >= N.Seq ||
           !std::binary_search(Seqs.begin(), Seqs.end(), N.PartnerSeq)))
        return ProgramDbStatus::Corrupt;

  if (!R.ok() || !R.atEnd())
    return ProgramDbStatus::Corrupt;

  if (GraphOut) {
    auto PG = std::make_shared<ParallelDynamicGraph>(NumShared,
                                                     Store.numProcs());
    for (uint32_t Pid = 0; Pid != Store.numProcs(); ++Pid)
      PG->adoptProcess(Pid, std::move(GNodes[Pid]), std::move(GEdges[Pid]));
    PG->finalize();
    *GraphOut = std::move(PG);
  }
  IndexOut = std::make_shared<const LogIndex>(std::move(Intervals),
                                              std::move(Open));
  return ProgramDbStatus::Ok;
}
