//===- log/ExecutionLog.cpp -----------------------------------------------===//
//
// Part of PPD. See ExecutionLog.h, LogRecord.h, and LogIO.h.
//
// Two on-disk formats share the "PPDL" magic:
//
//   v1 — the original fixed-width field stream, kept readable and
//        writable for migration;
//   v2 — the compact fast path: LEB128 varints, zigzag for signed values,
//        per-process Seq delta coding, PartnerSeq coded as a distance
//        from Seq, and one length-prefixed section per process so the
//        loader can decode sections in parallel. v2 serializes exactly
//        the fields each record kind carries (the same field sets
//        byteSize() accounts), where v1 writes every field of every
//        record.
//
// Loads decode into a scratch log and commit to the caller's output only
// after full validation: a truncated or corrupt file can never leave
// partial state behind.
//
//===----------------------------------------------------------------------===//

#include "log/ExecutionLog.h"

#include "bytecode/Instr.h"
#include "log/LogFormatV2.h"
#include "log/LogIO.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace ppd;

const char *ppd::syncKindName(SyncKind Kind) {
  switch (Kind) {
  case SyncKind::ProcStart:
    return "ProcStart";
  case SyncKind::ProcEnd:
    return "ProcEnd";
  case SyncKind::SemAcquire:
    return "P";
  case SyncKind::SemSignal:
    return "V";
  case SyncKind::ChanSend:
    return "send";
  case SyncKind::ChanSendUnblock:
    return "send-unblock";
  case SyncKind::ChanRecv:
    return "recv";
  case SyncKind::SpawnChild:
    return "spawn";
  case SyncKind::Stopped:
    return "stopped";
  }
  return "?";
}

size_t LogRecord::byteSize() const {
  // Approximate a compact binary encoding: 1-byte kind tag plus the fields
  // each kind actually needs.
  size_t Size = 1;
  switch (Kind) {
  case LogRecordKind::Prelog:
  case LogRecordKind::UnitLog:
    Size += 4; // id
    break;
  case LogRecordKind::Postlog:
    Size += 4 + 1; // id + flags
    if (Flags & PostlogExitsFunction)
      Size += 8; // return value
    break;
  case LogRecordKind::Input:
    Size += 8;
    break;
  case LogRecordKind::SyncEvent:
    Size += 1 + 4 + 8 + 8 + 8 + 4; // sync, id, seq, partner, value, stmt
    Size += 4 * (ReadSet.size() + WriteSet.size());
    break;
  case LogRecordKind::Stop:
    break; // tag only
  }
  for (const VarValue &V : Vars)
    Size += 4 + 8 * V.Values.size();
  return Size;
}

size_t ProcessLog::byteSize() const {
  size_t Size = 4 + 4 + 8 * Args.size();
  for (const LogRecord &R : Records)
    Size += R.byteSize();
  return Size;
}

size_t ExecutionLog::byteSize() const {
  size_t Size = 0;
  for (const ProcessLog &P : Procs)
    Size += P.byteSize();
  return Size;
}

//===----------------------------------------------------------------------===//
// Binary serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t Magic = v2::FileMagic; // "PPDL"

//===----------------------------------------------------------------------===//
// v1: fixed-width field stream over stdio (legacy migration format)
//===----------------------------------------------------------------------===//
//
// Deliberately the pre-v2 implementation, one fread/fwrite per field. v1
// exists so old log files stay readable (and writable, for downgrades);
// an untouched code path is the strongest compatibility guarantee, so all
// fast-path work went into v2 instead. The E2 benchmark's V1 columns
// measure exactly this code — the subsystem as it stood before the fast
// path.

/// Per-field fwrite sink; latches failure.
class StdioWriter {
public:
  explicit StdioWriter(FILE *File) : File(File) {}
  bool ok() const { return !Failed; }

  void u8(uint8_t V) { raw(&V, 1); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void i64(int64_t V) { raw(&V, 8); }

private:
  void raw(const void *Data, size_t Size) {
    if (!Failed && std::fwrite(Data, 1, Size, File) != Size)
      Failed = true;
  }
  FILE *File;
  bool Failed = false;
};

/// Per-field fread source; latches failure. Tracks the bytes left in the
/// file so corrupt counts can be rejected before any over-sized reserve.
class StdioReader {
public:
  StdioReader(FILE *File, size_t FileBytes)
      : File(File), Remaining(FileBytes) {}
  bool ok() const { return !Failed; }

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, 8);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    raw(&V, 8);
    return V;
  }

  /// Guards container pre-reservation against corrupt counts: a count can
  /// never exceed the bytes that remain to encode it.
  bool plausibleCount(uint64_t N) {
    if (N <= Remaining && N <= (uint64_t(1) << 28))
      return true;
    Failed = true;
    return false;
  }

  /// True iff the stream has no trailing bytes.
  bool atEof() { return std::fgetc(File) == EOF; }

private:
  void raw(void *Data, size_t Size) {
    if (Failed)
      return;
    if (Size > Remaining || std::fread(Data, 1, Size, File) != Size) {
      Failed = true;
      return;
    }
    Remaining -= Size;
  }
  FILE *File;
  size_t Remaining;
  bool Failed = false;
};

void writeRecordV1(StdioWriter &W, const LogRecord &R) {
  W.u8(uint8_t(R.Kind));
  W.u32(R.Id);
  W.u32(R.Flags);
  W.i64(R.Value);
  W.u64(R.Seq);
  W.u64(R.PartnerSeq);
  W.u8(uint8_t(R.Sync));
  W.u32(R.Stmt);
  W.u32(uint32_t(R.Vars.size()));
  for (const VarValue &V : R.Vars) {
    W.u32(V.Var);
    W.u32(uint32_t(V.Values.size()));
    for (int64_t Value : V.Values)
      W.i64(Value);
  }
  W.u32(uint32_t(R.ReadSet.size()));
  for (uint32_t S : R.ReadSet)
    W.u32(S);
  W.u32(uint32_t(R.WriteSet.size()));
  for (uint32_t S : R.WriteSet)
    W.u32(S);
}

bool readRecordV1(StdioReader &R, LogRecord &Out) {
  Out.Kind = LogRecordKind(R.u8());
  Out.Id = R.u32();
  Out.Flags = R.u32();
  Out.Value = R.i64();
  Out.Seq = R.u64();
  Out.PartnerSeq = R.u64();
  Out.Sync = SyncKind(R.u8());
  Out.Stmt = R.u32();
  uint32_t NumVars = R.u32();
  if (!R.plausibleCount(NumVars))
    return false;
  Out.Vars.resize(NumVars);
  for (VarValue &V : Out.Vars) {
    V.Var = R.u32();
    uint32_t NumValues = R.u32();
    if (!R.plausibleCount(NumValues))
      return false;
    V.Values.resize(NumValues);
    for (int64_t &Value : V.Values)
      Value = R.i64();
  }
  uint32_t NumRead = R.u32();
  if (!R.plausibleCount(NumRead))
    return false;
  Out.ReadSet.resize(NumRead);
  for (uint32_t &S : Out.ReadSet)
    S = R.u32();
  uint32_t NumWrite = R.u32();
  if (!R.plausibleCount(NumWrite))
    return false;
  Out.WriteSet.resize(NumWrite);
  for (uint32_t &S : Out.WriteSet)
    S = R.u32();
  return R.ok();
}

void saveV1(StdioWriter &W, const ExecutionLog &Log) {
  W.u32(uint32_t(Log.Procs.size()));
  for (const ProcessLog &P : Log.Procs) {
    W.u32(P.Pid);
    W.u32(P.RootFunc);
    W.u32(uint32_t(P.Args.size()));
    for (int64_t A : P.Args)
      W.i64(A);
    W.u32(uint32_t(P.Records.size()));
    for (const LogRecord &R : P.Records)
      writeRecordV1(W, R);
  }
  W.u32(uint32_t(Log.Output.size()));
  for (const OutputRecord &O : Log.Output) {
    W.u32(O.Pid);
    W.i64(O.Value);
    W.u32(O.Stmt);
  }
}

bool loadV1(StdioReader &R, ExecutionLog &Out) {
  uint32_t NumProcs = R.u32();
  if (!R.plausibleCount(NumProcs))
    return false;
  Out.Procs.resize(NumProcs);
  for (ProcessLog &P : Out.Procs) {
    P.Pid = R.u32();
    P.RootFunc = R.u32();
    uint32_t NumArgs = R.u32();
    if (!R.plausibleCount(NumArgs))
      return false;
    P.Args.resize(NumArgs);
    for (int64_t &A : P.Args)
      A = R.i64();
    uint32_t NumRecords = R.u32();
    if (!R.plausibleCount(NumRecords))
      return false;
    P.Records.reserve(NumRecords);
    for (uint32_t I = 0; I != NumRecords; ++I) {
      if (!readRecordV1(R, P.Records.emplace_back()))
        return false;
      if (P.Records.back().Kind == LogRecordKind::Prelog)
        ++P.PrelogCount;
    }
  }
  uint32_t NumOutput = R.u32();
  if (!R.plausibleCount(NumOutput))
    return false;
  Out.Output.resize(NumOutput);
  for (OutputRecord &O : Out.Output) {
    O.Pid = R.u32();
    O.Value = R.i64();
    O.Stmt = R.u32();
  }
  return R.ok() && R.atEof();
}

//===----------------------------------------------------------------------===//
// v2: compact varint encoding, per-process sections
//===----------------------------------------------------------------------===//

/// Runs Fn(0), ..., Fn(N-1), fanning the calls out across \p Pool when one
/// is available. The waiting thread steals queued tasks, so a pool shared
/// with other work still makes progress. A null pool, an empty pool, or a
/// trip count of one degrades to a plain serial loop.
template <typename FnT>
void parallelFor(ThreadPool *Pool, size_t N, const FnT &Fn) {
  if (!Pool || Pool->numThreads() == 0 || N < 2) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Done{0};
  for (size_t I = 0; I != N; ++I)
    Pool->submit([&, I] {
      Fn(I);
      Done.fetch_add(1, std::memory_order_acq_rel);
    });
  while (Done.load(std::memory_order_acquire) != N)
    if (!Pool->runOneTask())
      std::this_thread::yield();
}

} // namespace

//===----------------------------------------------------------------------===//
// The v2 record/section codec (shared interface: LogFormatV2.h)
//===----------------------------------------------------------------------===//

void ppd::v2::writeRecord(LogWriter &W, const LogRecord &R,
                          uint64_t &PrevSeq) {
  // One capacity check covers the whole record: 10 bytes per worst-case
  // varint over every field the record can carry, so the per-field
  // emitters below run branch-free on capacity.
  size_t Bound = 2 + 6 * 10 + 10 * (R.ReadSet.size() + R.WriteSet.size());
  for (const VarValue &V : R.Vars)
    Bound += 2 * 10 + 10 * V.Values.size();
  W.ensureBytes(Bound);

  W.u8Unchecked(uint8_t(R.Kind));
  auto Vars = [&] {
    W.varintUnchecked(R.Vars.size());
    for (const VarValue &V : R.Vars) {
      W.varintUnchecked(V.Var);
      W.varintUnchecked(V.Values.size());
      for (int64_t Value : V.Values)
        W.svarintUnchecked(Value);
    }
  };
  switch (R.Kind) {
  case LogRecordKind::Prelog:
  case LogRecordKind::UnitLog:
    W.varintUnchecked(R.Id);
    Vars();
    break;
  case LogRecordKind::Postlog:
    W.varintUnchecked(R.Id);
    W.varintUnchecked(R.Flags);
    if (R.Flags & PostlogExitsFunction)
      W.svarintUnchecked(R.Value);
    Vars();
    break;
  case LogRecordKind::Input:
    W.svarintUnchecked(R.Value);
    break;
  case LogRecordKind::SyncEvent: {
    W.u8Unchecked(uint8_t(R.Sync));
    W.varintUnchecked(R.Id);
    W.varintUnchecked(stmtCode(R.Stmt));
    W.svarintUnchecked(R.Value);
    // Seqs of one process are a monotone subsequence of the global
    // counter; the gap since the process's previous sync event is small.
    W.svarintUnchecked(int64_t(R.Seq - PrevSeq));
    PrevSeq = R.Seq;
    // PartnerSeq, when present, is a recent event: code its distance from
    // Seq. 0 flags "no partner"; otherwise bit 0 is set above the zigzag
    // distance.
    if (R.PartnerSeq == NoPartner)
      W.varintUnchecked(0);
    else
      // Unsigned subtraction: wraps mod 2^64, so any partner value —
      // even an implausible one from a hand-built log — round-trips.
      W.varintUnchecked((zigzagEncode(int64_t(R.Seq - R.PartnerSeq)) << 1) |
                        1);
    W.varintUnchecked(R.ReadSet.size());
    for (uint32_t S : R.ReadSet)
      W.varintUnchecked(S);
    W.varintUnchecked(R.WriteSet.size());
    for (uint32_t S : R.WriteSet)
      W.varintUnchecked(S);
    break;
  }
  case LogRecordKind::Stop:
    W.varintUnchecked(stmtCode(R.Stmt));
    break;
  }
}

bool ppd::v2::readRecord(ByteReader &R, LogRecord &Out, uint64_t &PrevSeq) {
  Out.Kind = LogRecordKind(R.u8());
  auto Vars = [&] {
    uint64_t NumVars = R.varint();
    if (!R.plausibleCount(NumVars))
      return false;
    Out.Vars.resize(NumVars);
    for (VarValue &V : Out.Vars) {
      V.Var = VarId(R.varint());
      uint64_t NumValues = R.varint();
      if (!R.plausibleCount(NumValues))
        return false;
      V.Values.resize(NumValues);
      for (int64_t &Value : V.Values)
        Value = R.svarint();
    }
    return true;
  };
  switch (Out.Kind) {
  case LogRecordKind::Prelog:
  case LogRecordKind::UnitLog:
    Out.Id = uint32_t(R.varint());
    if (!Vars())
      return false;
    break;
  case LogRecordKind::Postlog:
    Out.Id = uint32_t(R.varint());
    Out.Flags = uint32_t(R.varint());
    if (Out.Flags & PostlogExitsFunction)
      Out.Value = R.svarint();
    if (!Vars())
      return false;
    break;
  case LogRecordKind::Input:
    Out.Value = R.svarint();
    break;
  case LogRecordKind::SyncEvent: {
    Out.Sync = SyncKind(R.u8());
    Out.Id = uint32_t(R.varint());
    Out.Stmt = stmtDecode(R.varint());
    Out.Value = R.svarint();
    Out.Seq = PrevSeq + uint64_t(R.svarint());
    PrevSeq = Out.Seq;
    uint64_t Partner = R.varint();
    Out.PartnerSeq = Partner == 0
                         ? NoPartner
                         : Out.Seq - uint64_t(zigzagDecode(Partner >> 1));
    uint64_t NumRead = R.varint();
    if (!R.plausibleCount(NumRead))
      return false;
    Out.ReadSet.resize(NumRead);
    for (uint32_t &S : Out.ReadSet)
      S = uint32_t(R.varint());
    uint64_t NumWrite = R.varint();
    if (!R.plausibleCount(NumWrite))
      return false;
    Out.WriteSet.resize(NumWrite);
    for (uint32_t &S : Out.WriteSet)
      S = uint32_t(R.varint());
    break;
  }
  case LogRecordKind::Stop:
    Out.Stmt = stmtDecode(R.varint());
    break;
  default:
    R.fail();
    return false;
  }
  return R.ok();
}

bool ppd::v2::readSectionHeader(ByteReader &R, SectionHeader &Out) {
  Out.Pid = uint32_t(R.varint());
  Out.RootFunc = uint32_t(R.varint());
  uint64_t NumArgs = R.varint();
  if (!R.plausibleCount(NumArgs))
    return false;
  Out.Args.resize(NumArgs);
  for (int64_t &A : Out.Args)
    A = R.svarint();
  Out.NumRecords = R.varint();
  if (!R.plausibleCount(Out.NumRecords))
    return false;
  Out.PrelogCount = R.varint();
  if (!R.plausibleCount(Out.PrelogCount))
    return false;
  return R.ok();
}

bool ppd::v2::decodeSection(ByteReader R, ProcessLog &P) {
  SectionHeader Header;
  if (!readSectionHeader(R, Header))
    return false;
  P.Pid = Header.Pid;
  P.RootFunc = Header.RootFunc;
  P.Args = std::move(Header.Args);
  P.Records.reserve(Header.NumRecords);
  uint64_t PrevSeq = 0;
  for (uint64_t I = 0; I != Header.NumRecords; ++I) {
    LogRecord &Rec = P.Records.emplace_back();
    if (!readRecord(R, Rec, PrevSeq))
      return false;
    if (Rec.Kind == LogRecordKind::Prelog)
      ++P.PrelogCount;
  }
  // The header's prelog count is the LogIndex reservation; reject files
  // whose sections disagree with their own headers.
  return R.ok() && R.atEnd() && P.PrelogCount == Header.PrelogCount;
}

bool ppd::v2::skimSection(ByteReader R, std::vector<LogInterval> &Intervals,
                          std::vector<uint32_t> &Open) {
  SectionHeader Header;
  if (!readSectionHeader(R, Header))
    return false;
  Intervals.reserve(Header.PrelogCount);
  std::vector<uint32_t> Stack; // interval indices

  // Skips one captured-variables list (the Vars of Prelog/Postlog/UnitLog
  // records) without materializing values.
  auto SkipVars = [&] {
    uint64_t NumVars = R.varint();
    if (!R.plausibleCount(NumVars))
      return false;
    for (uint64_t V = 0; V != NumVars; ++V) {
      R.varint(); // variable id
      uint64_t NumValues = R.varint();
      if (!R.plausibleCount(NumValues))
        return false;
      for (uint64_t I = 0; I != NumValues; ++I)
        R.svarint();
    }
    return R.ok();
  };

  uint64_t Prelogs = 0;
  for (uint64_t Idx = 0; Idx != Header.NumRecords; ++Idx) {
    switch (LogRecordKind(R.u8())) {
    case LogRecordKind::Prelog: {
      uint32_t EBlock = uint32_t(R.varint());
      if (!SkipVars())
        return false;
      LogInterval Interval;
      Interval.Index = uint32_t(Intervals.size());
      Interval.EBlock = EBlock;
      Interval.PrelogRecord = uint32_t(Idx);
      Interval.PostlogRecord = InvalidId;
      Interval.Parent = Stack.empty() ? InvalidId : Stack.back();
      Interval.Depth = uint32_t(Stack.size());
      Stack.push_back(Interval.Index);
      Intervals.push_back(Interval);
      ++Prelogs;
      break;
    }
    case LogRecordKind::Postlog: {
      uint32_t EBlock = uint32_t(R.varint());
      uint32_t Flags = uint32_t(R.varint());
      if (Flags & PostlogExitsFunction)
        R.svarint(); // return value
      if (!SkipVars())
        return false;
      // Unlike the in-memory index build (which asserts), a skim reads
      // untrusted file bytes: structural violations fail the load.
      if (Stack.empty() || Intervals[Stack.back()].EBlock != EBlock)
        return false;
      LogInterval &Interval = Intervals[Stack.back()];
      Interval.PostlogRecord = uint32_t(Idx);
      Interval.ExitsFunction = (Flags & PostlogExitsFunction) != 0;
      Stack.pop_back();
      break;
    }
    case LogRecordKind::UnitLog:
      R.varint(); // unit id
      if (!SkipVars())
        return false;
      break;
    case LogRecordKind::Input:
      R.svarint();
      break;
    case LogRecordKind::SyncEvent: {
      R.u8();      // sync kind
      R.varint();  // object id
      R.varint();  // stmt
      R.svarint(); // value
      R.svarint(); // seq delta
      R.varint();  // partner distance
      uint64_t NumRead = R.varint();
      if (!R.plausibleCount(NumRead))
        return false;
      for (uint64_t I = 0; I != NumRead; ++I)
        R.varint();
      uint64_t NumWrite = R.varint();
      if (!R.plausibleCount(NumWrite))
        return false;
      for (uint64_t I = 0; I != NumWrite; ++I)
        R.varint();
      break;
    }
    case LogRecordKind::Stop:
      R.varint(); // stmt
      break;
    default:
      return false;
    }
    if (!R.ok())
      return false;
  }
  Open = std::move(Stack);
  return R.ok() && R.atEnd() && Prelogs == Header.PrelogCount;
}

void ppd::v2::writeOutput(LogWriter &W, const std::vector<OutputRecord> &Out) {
  W.varint(Out.size());
  for (const OutputRecord &O : Out) {
    W.varint(O.Pid);
    W.svarint(O.Value);
    W.varint(stmtCode(O.Stmt));
  }
}

bool ppd::v2::readOutput(ByteReader &R, std::vector<OutputRecord> &Out) {
  uint64_t NumOutput = R.varint();
  if (!R.plausibleCount(NumOutput))
    return false;
  Out.resize(NumOutput);
  for (OutputRecord &O : Out) {
    O.Pid = uint32_t(R.varint());
    O.Value = R.svarint();
    O.Stmt = stmtDecode(R.varint());
  }
  return R.ok();
}

namespace {

void saveV2(LogWriter &W, const ExecutionLog &Log, ThreadPool *Pool) {
  W.varint(Log.Procs.size());
  // Each section is a pure function of its process's records, so with a
  // pool the serializations fan out; the stitched bytes are identical at
  // any worker count.
  std::vector<LogWriter> Sections(Log.Procs.size());
  parallelFor(Pool, Sections.size(), [&](size_t I) {
    const ProcessLog &P = Log.Procs[I];
    LogWriter &S = Sections[I];
    // Typical records encode to ~10 bytes; reserving up front turns ~a
    // dozen doubling-and-copy growths per section into at most one.
    S.reserve(64 + 16 * P.Records.size());
    S.varint(P.Pid);
    S.varint(P.RootFunc);
    S.varint(P.Args.size());
    for (int64_t A : P.Args)
      S.svarint(A);
    S.varint(P.Records.size());
    // The prelog count the header must carry (the LogIndex reservation) is
    // recounted rather than trusting ProcessLog::PrelogCount, so
    // hand-built logs with a stale counter still save correctly.
    uint32_t Prelogs = 0;
    for (const LogRecord &R : P.Records)
      if (R.Kind == LogRecordKind::Prelog)
        ++Prelogs;
    S.varint(Prelogs);
    uint64_t PrevSeq = 0;
    for (const LogRecord &R : P.Records)
      v2::writeRecord(S, R, PrevSeq);
  });
  for (const LogWriter &S : Sections) {
    // The byte length lets the loader skip to the next section without
    // decoding this one — the handle parallel decode hangs off.
    W.varint(S.size());
    W.bytes(S);
  }
  v2::writeOutput(W, Log.Output);
}

bool loadV2(ByteReader &R, ExecutionLog &Out, ThreadPool *Pool) {
  uint64_t NumProcs = R.varint();
  if (!R.plausibleCount(NumProcs))
    return false;
  Out.Procs.resize(NumProcs);

  // Pass 1: slice the file into per-process sections (cheap — one varint
  // plus a bounds-checked skip per process).
  std::vector<ByteReader> Sections;
  Sections.reserve(NumProcs);
  for (uint64_t I = 0; I != NumProcs; ++I) {
    uint64_t Len = R.varint();
    if (!R.ok() || Len > R.remaining())
      return false;
    Sections.push_back(R.sub(size_t(Len)));
  }
  if (!R.ok())
    return false;

  // Pass 2: decode the sections — independently, so in parallel when a
  // pool is available. Each task writes only its own pre-sized slot;
  // the assembled log is identical at any worker count.
  std::atomic<bool> AllOk{true};
  parallelFor(Pool, Sections.size(), [&](size_t I) {
    if (!v2::decodeSection(Sections[I], Out.Procs[I]))
      AllOk.store(false, std::memory_order_relaxed);
  });
  if (!AllOk.load(std::memory_order_acquire))
    return false;

  if (!v2::readOutput(R, Out.Output))
    return false;
  return R.ok() && R.atEnd();
}

} // namespace

bool ExecutionLog::save(const std::string &Path, LogFormat Format,
                        ThreadPool *Pool) const {
  if (Format == LogFormat::V1) {
    // Legacy path: stream straight to the file, one fwrite per field.
    FileHandle File(Path, "wb");
    if (!File)
      return false;
    StdioWriter W(File.get());
    W.u32(Magic);
    W.u32(uint32_t(Format));
    saveV1(W, *this);
    return W.ok() && File.close();
  }
  LogWriter W;
  W.u32(Magic);
  W.u32(uint32_t(Format));
  saveV2(W, *this, Pool);
  return W.writeFile(Path);
}

bool ExecutionLog::load(const std::string &Path, ExecutionLog &Out,
                        ThreadPool *Pool) {
  FileHandle File(Path, "rb");
  if (!File)
    return false;
  if (std::fseek(File.get(), 0, SEEK_END) != 0)
    return false;
  long FileSize = std::ftell(File.get());
  if (FileSize < 0 || std::fseek(File.get(), 0, SEEK_SET) != 0)
    return false;

  StdioReader R(File.get(), size_t(FileSize));
  if (R.u32() != Magic)
    return false;
  uint32_t Version = R.u32();
  if (!R.ok())
    return false;

  // Decode into scratch; commit only a fully validated log.
  ExecutionLog Scratch;
  bool Ok = false;
  if (Version == uint32_t(LogFormat::V1)) {
    // Legacy path: decode field by field from the stream.
    Ok = loadV1(R, Scratch);
  } else if (Version == uint32_t(LogFormat::V2)) {
    // Fast path: slurp the payload and decode in memory, so the
    // per-process sections can fan out across a pool.
    std::vector<uint8_t> Bytes(size_t(FileSize) - 8);
    if (!Bytes.empty() &&
        std::fread(Bytes.data(), 1, Bytes.size(), File.get()) != Bytes.size())
      return false;
    ByteReader BR(Bytes.data(), Bytes.size());
    Ok = loadV2(BR, Scratch, Pool);
  }
  if (!Ok)
    return false;
  Out = std::move(Scratch);
  return true;
}

//===----------------------------------------------------------------------===//
// compactLogFile — streaming v1 → v2 migration
//===----------------------------------------------------------------------===//

CompactResult ppd::compactLogFile(const std::string &Path,
                                  std::string &Message) {
  FileHandle In(Path, "rb");
  if (!In) {
    Message = "cannot open '" + Path + "'";
    return CompactResult::Error;
  }
  if (std::fseek(In.get(), 0, SEEK_END) != 0) {
    Message = "cannot seek '" + Path + "'";
    return CompactResult::Error;
  }
  long FileSize = std::ftell(In.get());
  if (FileSize < 0 || std::fseek(In.get(), 0, SEEK_SET) != 0) {
    Message = "cannot seek '" + Path + "'";
    return CompactResult::Error;
  }

  StdioReader R(In.get(), size_t(FileSize));
  if (R.u32() != Magic || !R.ok()) {
    Message = "'" + Path + "' is not a PPD log (bad magic)";
    return CompactResult::Error;
  }
  uint32_t Version = R.u32();
  if (Version == uint32_t(LogFormat::V2)) {
    Message = "'" + Path + "' is already v2";
    return CompactResult::AlreadyV2;
  }
  if (Version != uint32_t(LogFormat::V1)) {
    Message = "'" + Path + "' has unknown format version " +
              std::to_string(Version);
    return CompactResult::Error;
  }

  // v1 is a sequential per-process stream with record counts up front, so
  // the conversion streams one section at a time: decode a v1 record,
  // re-encode it v2, flush the section. Peak memory is one section's
  // records plus its encoded bytes — never the whole log.
  std::string TmpPath = Path + ".compact.tmp";
  FileHandle Out(TmpPath, "wb");
  if (!Out) {
    Message = "cannot create '" + TmpPath + "'";
    return CompactResult::Error;
  }

  auto Fail = [&](const std::string &Why) {
    Out.close();
    std::remove(TmpPath.c_str());
    Message = Why;
    return CompactResult::Error;
  };
  size_t Written = 0;
  auto Flush = [&](const LogWriter &W) {
    Written += W.size();
    return W.size() == 0 ||
           std::fwrite(W.data(), 1, W.size(), Out.get()) == W.size();
  };

  LogWriter Head;
  Head.u32(Magic);
  Head.u32(uint32_t(LogFormat::V2));
  uint32_t NumProcs = R.u32();
  if (!R.plausibleCount(NumProcs))
    return Fail("'" + Path + "' is corrupt (bad process count)");
  Head.varint(NumProcs);
  if (!Flush(Head))
    return Fail("write failed on '" + TmpPath + "'");

  LogWriter Section;
  for (uint32_t ProcIdx = 0; ProcIdx != NumProcs; ++ProcIdx) {
    Section.clear();
    Section.varint(R.u32()); // Pid
    Section.varint(R.u32()); // RootFunc
    uint32_t NumArgs = R.u32();
    if (!R.plausibleCount(NumArgs))
      return Fail("'" + Path + "' is corrupt (bad arg count)");
    Section.varint(NumArgs);
    for (uint32_t I = 0; I != NumArgs; ++I)
      Section.svarint(R.i64());
    uint32_t NumRecords = R.u32();
    if (!R.plausibleCount(NumRecords))
      return Fail("'" + Path + "' is corrupt (bad record count)");
    // The section header carries the record and prelog counts before the
    // record stream, so encode the records into a scratch writer first.
    LogWriter Body;
    Body.reserve(16 * size_t(NumRecords));
    uint64_t Prelogs = 0, PrevSeq = 0;
    LogRecord Rec;
    for (uint32_t I = 0; I != NumRecords; ++I) {
      Rec = LogRecord();
      if (!readRecordV1(R, Rec))
        return Fail("'" + Path + "' is corrupt (truncated record)");
      if (Rec.Kind == LogRecordKind::Prelog)
        ++Prelogs;
      v2::writeRecord(Body, Rec, PrevSeq);
    }
    Section.varint(NumRecords);
    Section.varint(Prelogs);
    // Section length prefix = header bytes + record bytes.
    LogWriter Len;
    Len.varint(Section.size() + Body.size());
    if (!Flush(Len) || !Flush(Section) || !Flush(Body))
      return Fail("write failed on '" + TmpPath + "'");
  }

  LogWriter Trailer;
  uint32_t NumOutput = R.u32();
  if (!R.plausibleCount(NumOutput))
    return Fail("'" + Path + "' is corrupt (bad output count)");
  Trailer.varint(NumOutput);
  for (uint32_t I = 0; I != NumOutput; ++I) {
    Trailer.varint(R.u32());                // Pid
    Trailer.svarint(R.i64());               // Value
    Trailer.varint(v2::stmtCode(R.u32())); // Stmt
  }
  if (!R.ok() || !R.atEof())
    return Fail("'" + Path + "' is corrupt (trailing bytes)");
  if (!Flush(Trailer) || !Out.close())
    return Fail("write failed on '" + TmpPath + "'");

  // In-place: replace the v1 file only after the v2 bytes are fully
  // flushed, so an interrupted compact leaves the original untouched.
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    Message = "cannot replace '" + Path + "'";
    return CompactResult::Error;
  }
  Message = "converted '" + Path + "' to v2: " + std::to_string(FileSize) +
            " -> " + std::to_string(Written) + " bytes";
  return CompactResult::Converted;
}

//===----------------------------------------------------------------------===//
// LogIndex
//===----------------------------------------------------------------------===//

namespace {

/// Builds one process's interval tree. Pure function of that process's
/// record stream — the unit of parallelism.
void buildProcIndex(const ProcessLog &P, std::vector<LogInterval> &Intervals,
                    std::vector<uint32_t> &Open) {
  Intervals.reserve(P.PrelogCount);
  std::vector<uint32_t> Stack; // interval indices
  const RecordSeq &Records = P.Records;
  for (uint32_t Idx = 0; Idx != Records.size(); ++Idx) {
    const LogRecord &R = Records[Idx];
    if (R.Kind == LogRecordKind::Prelog) {
      LogInterval Interval;
      Interval.Index = uint32_t(Intervals.size());
      Interval.EBlock = R.Id;
      Interval.PrelogRecord = Idx;
      Interval.PostlogRecord = InvalidId;
      Interval.Parent = Stack.empty() ? InvalidId : Stack.back();
      Interval.Depth = uint32_t(Stack.size());
      Stack.push_back(Interval.Index);
      Intervals.push_back(Interval);
    } else if (R.Kind == LogRecordKind::Postlog) {
      assert(!Stack.empty() && "postlog without open interval");
      LogInterval &Interval = Intervals[Stack.back()];
      assert(Interval.EBlock == R.Id && "postlog/prelog e-block mismatch");
      Interval.PostlogRecord = Idx;
      Interval.ExitsFunction = (R.Flags & PostlogExitsFunction) != 0;
      Stack.pop_back();
    }
  }
  Open = std::move(Stack);
}

} // namespace

LogIndex::LogIndex(const ExecutionLog &Log, ThreadPool *Pool) {
  size_t NumProcs = Log.Procs.size();
  Intervals.resize(NumProcs);
  OpenIntervals.resize(NumProcs);

  parallelFor(Pool, NumProcs, [&](size_t Pid) {
    buildProcIndex(Log.Procs[Pid], Intervals[Pid], OpenIntervals[Pid]);
  });
}

const LogInterval *LogIndex::intervalAtRecord(uint32_t Pid,
                                              uint32_t RecordIdx) const {
  for (const LogInterval &Interval : Intervals[Pid])
    if (Interval.PrelogRecord == RecordIdx)
      return &Interval;
  return nullptr;
}

const LogInterval *LogIndex::enclosing(uint32_t Pid,
                                       uint32_t RecordIdx) const {
  const LogInterval *Best = nullptr;
  for (const LogInterval &Interval : Intervals[Pid]) {
    if (Interval.PrelogRecord > RecordIdx)
      break;
    uint32_t End = Interval.PostlogRecord == InvalidId
                       ? ~0u
                       : Interval.PostlogRecord;
    if (RecordIdx <= End)
      if (!Best || Interval.Depth >= Best->Depth)
        Best = &Interval;
  }
  return Best;
}

const LogInterval *LogIndex::lastOpenInterval(uint32_t Pid) const {
  if (OpenIntervals[Pid].empty())
    return nullptr;
  return &Intervals[Pid][OpenIntervals[Pid].back()];
}

bool LogIndex::appendRecords(uint32_t Pid, const ProcessLog &PL,
                             uint32_t FromRecord) {
  if (Pid > Intervals.size() || FromRecord > PL.Records.size())
    return false;
  if (Pid == Intervals.size()) {
    Intervals.emplace_back();
    OpenIntervals.emplace_back();
  }
  // Same algorithm as buildProcIndex, resumed: the saved open-interval
  // stack is exactly the builder's stack at the point the previous
  // records ended, so continuing from it yields the tables a full
  // rebuild would.
  std::vector<LogInterval> &Ivs = Intervals[Pid];
  std::vector<uint32_t> Stack = std::move(OpenIntervals[Pid]);
  const RecordSeq &Records = PL.Records;
  for (uint32_t Idx = FromRecord; Idx != Records.size(); ++Idx) {
    const LogRecord &R = Records[Idx];
    if (R.Kind == LogRecordKind::Prelog) {
      LogInterval Interval;
      Interval.Index = uint32_t(Ivs.size());
      Interval.EBlock = R.Id;
      Interval.PrelogRecord = Idx;
      Interval.PostlogRecord = InvalidId;
      Interval.Parent = Stack.empty() ? InvalidId : Stack.back();
      Interval.Depth = uint32_t(Stack.size());
      Stack.push_back(Interval.Index);
      Ivs.push_back(Interval);
    } else if (R.Kind == LogRecordKind::Postlog) {
      if (Stack.empty())
        return false;
      LogInterval &Interval = Ivs[Stack.back()];
      if (Interval.EBlock != R.Id)
        return false;
      Interval.PostlogRecord = Idx;
      Interval.ExitsFunction = (R.Flags & PostlogExitsFunction) != 0;
      Stack.pop_back();
    }
  }
  OpenIntervals[Pid] = std::move(Stack);
  return true;
}
