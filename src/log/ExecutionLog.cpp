//===- log/ExecutionLog.cpp -----------------------------------------------===//
//
// Part of PPD. See ExecutionLog.h and LogRecord.h.
//
//===----------------------------------------------------------------------===//

#include "log/ExecutionLog.h"

#include "bytecode/Instr.h"

#include <cstdio>

using namespace ppd;

const char *ppd::syncKindName(SyncKind Kind) {
  switch (Kind) {
  case SyncKind::ProcStart:
    return "ProcStart";
  case SyncKind::ProcEnd:
    return "ProcEnd";
  case SyncKind::SemAcquire:
    return "P";
  case SyncKind::SemSignal:
    return "V";
  case SyncKind::ChanSend:
    return "send";
  case SyncKind::ChanSendUnblock:
    return "send-unblock";
  case SyncKind::ChanRecv:
    return "recv";
  case SyncKind::SpawnChild:
    return "spawn";
  }
  return "?";
}

size_t LogRecord::byteSize() const {
  // Approximate a compact binary encoding: 1-byte kind tag plus the fields
  // each kind actually needs.
  size_t Size = 1;
  switch (Kind) {
  case LogRecordKind::Prelog:
  case LogRecordKind::UnitLog:
    Size += 4; // id
    break;
  case LogRecordKind::Postlog:
    Size += 4 + 1; // id + flags
    if (Flags & PostlogExitsFunction)
      Size += 8; // return value
    break;
  case LogRecordKind::Input:
    Size += 8;
    break;
  case LogRecordKind::SyncEvent:
    Size += 1 + 4 + 8 + 8 + 8 + 4; // sync, id, seq, partner, value, stmt
    Size += 4 * (ReadSet.size() + WriteSet.size());
    break;
  case LogRecordKind::Stop:
    break; // tag only
  }
  for (const VarValue &V : Vars)
    Size += 4 + 8 * V.Values.size();
  return Size;
}

size_t ProcessLog::byteSize() const {
  size_t Size = 4 + 4 + 8 * Args.size();
  for (const LogRecord &R : Records)
    Size += R.byteSize();
  return Size;
}

size_t ExecutionLog::byteSize() const {
  size_t Size = 0;
  for (const ProcessLog &P : Procs)
    Size += P.byteSize();
  return Size;
}

//===----------------------------------------------------------------------===//
// Binary serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t Magic = 0x5050444cu; // "PPDL"
constexpr uint32_t Version = 1;

class Writer {
public:
  explicit Writer(FILE *File) : File(File) {}
  bool ok() const { return !Failed; }

  void u8(uint8_t V) { raw(&V, 1); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void i64(int64_t V) { raw(&V, 8); }

private:
  void raw(const void *Data, size_t Size) {
    if (!Failed && std::fwrite(Data, 1, Size, File) != Size)
      Failed = true;
  }
  FILE *File;
  bool Failed = false;
};

class Reader {
public:
  explicit Reader(FILE *File) : File(File) {}
  bool ok() const { return !Failed; }

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, 8);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    raw(&V, 8);
    return V;
  }

  /// Guards vector resizes against corrupt counts.
  bool plausibleCount(uint64_t N) {
    if (N <= (1u << 28))
      return true;
    Failed = true;
    return false;
  }

private:
  void raw(void *Data, size_t Size) {
    if (!Failed && std::fread(Data, 1, Size, File) != Size)
      Failed = true;
  }
  FILE *File;
  bool Failed = false;
};

void writeRecord(Writer &W, const LogRecord &R) {
  W.u8(uint8_t(R.Kind));
  W.u32(R.Id);
  W.u32(R.Flags);
  W.i64(R.Value);
  W.u64(R.Seq);
  W.u64(R.PartnerSeq);
  W.u8(uint8_t(R.Sync));
  W.u32(R.Stmt);
  W.u32(uint32_t(R.Vars.size()));
  for (const VarValue &V : R.Vars) {
    W.u32(V.Var);
    W.u32(uint32_t(V.Values.size()));
    for (int64_t Value : V.Values)
      W.i64(Value);
  }
  W.u32(uint32_t(R.ReadSet.size()));
  for (uint32_t S : R.ReadSet)
    W.u32(S);
  W.u32(uint32_t(R.WriteSet.size()));
  for (uint32_t S : R.WriteSet)
    W.u32(S);
}

bool readRecord(Reader &R, LogRecord &Out) {
  Out.Kind = LogRecordKind(R.u8());
  Out.Id = R.u32();
  Out.Flags = R.u32();
  Out.Value = R.i64();
  Out.Seq = R.u64();
  Out.PartnerSeq = R.u64();
  Out.Sync = SyncKind(R.u8());
  Out.Stmt = R.u32();
  uint32_t NumVars = R.u32();
  if (!R.plausibleCount(NumVars))
    return false;
  Out.Vars.resize(NumVars);
  for (VarValue &V : Out.Vars) {
    V.Var = R.u32();
    uint32_t NumValues = R.u32();
    if (!R.plausibleCount(NumValues))
      return false;
    V.Values.resize(NumValues);
    for (int64_t &Value : V.Values)
      Value = R.i64();
  }
  uint32_t NumRead = R.u32();
  if (!R.plausibleCount(NumRead))
    return false;
  Out.ReadSet.resize(NumRead);
  for (uint32_t &S : Out.ReadSet)
    S = R.u32();
  uint32_t NumWrite = R.u32();
  if (!R.plausibleCount(NumWrite))
    return false;
  Out.WriteSet.resize(NumWrite);
  for (uint32_t &S : Out.WriteSet)
    S = R.u32();
  return R.ok();
}

} // namespace

bool ExecutionLog::save(const std::string &Path) const {
  FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  Writer W(File);
  W.u32(Magic);
  W.u32(Version);
  W.u32(uint32_t(Procs.size()));
  for (const ProcessLog &P : Procs) {
    W.u32(P.Pid);
    W.u32(P.RootFunc);
    W.u32(uint32_t(P.Args.size()));
    for (int64_t A : P.Args)
      W.i64(A);
    W.u32(uint32_t(P.Records.size()));
    for (const LogRecord &R : P.Records)
      writeRecord(W, R);
  }
  W.u32(uint32_t(Output.size()));
  for (const OutputRecord &O : Output) {
    W.u32(O.Pid);
    W.i64(O.Value);
    W.u32(O.Stmt);
  }
  bool Ok = W.ok();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

bool ExecutionLog::load(const std::string &Path, ExecutionLog &Out) {
  FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Reader R(File);
  bool Ok = R.u32() == Magic && R.u32() == Version;
  if (Ok) {
    uint32_t NumProcs = R.u32();
    Ok = R.plausibleCount(NumProcs);
    if (Ok)
      Out.Procs.resize(NumProcs);
    for (ProcessLog &P : Out.Procs) {
      if (!Ok)
        break;
      P.Pid = R.u32();
      P.RootFunc = R.u32();
      uint32_t NumArgs = R.u32();
      Ok = R.plausibleCount(NumArgs);
      if (!Ok)
        break;
      P.Args.resize(NumArgs);
      for (int64_t &A : P.Args)
        A = R.i64();
      uint32_t NumRecords = R.u32();
      Ok = R.plausibleCount(NumRecords);
      if (!Ok)
        break;
      P.Records.resize(NumRecords);
      for (LogRecord &Rec : P.Records)
        if (!readRecord(R, Rec)) {
          Ok = false;
          break;
        }
    }
  }
  if (Ok) {
    uint32_t NumOutput = R.u32();
    Ok = R.plausibleCount(NumOutput);
    if (Ok) {
      Out.Output.resize(NumOutput);
      for (OutputRecord &O : Out.Output) {
        O.Pid = R.u32();
        O.Value = R.i64();
        O.Stmt = R.u32();
      }
    }
  }
  Ok = Ok && R.ok();
  std::fclose(File);
  return Ok;
}

//===----------------------------------------------------------------------===//
// LogIndex
//===----------------------------------------------------------------------===//

LogIndex::LogIndex(const ExecutionLog &Log) {
  Intervals.resize(Log.Procs.size());
  OpenIntervals.resize(Log.Procs.size());

  for (uint32_t Pid = 0; Pid != Log.Procs.size(); ++Pid) {
    const std::vector<LogRecord> &Records = Log.Procs[Pid].Records;
    std::vector<uint32_t> Stack; // interval indices
    for (uint32_t Idx = 0; Idx != Records.size(); ++Idx) {
      const LogRecord &R = Records[Idx];
      if (R.Kind == LogRecordKind::Prelog) {
        LogInterval Interval;
        Interval.Index = uint32_t(Intervals[Pid].size());
        Interval.EBlock = R.Id;
        Interval.PrelogRecord = Idx;
        Interval.PostlogRecord = InvalidId;
        Interval.Parent = Stack.empty() ? InvalidId : Stack.back();
        Interval.Depth = uint32_t(Stack.size());
        Stack.push_back(Interval.Index);
        Intervals[Pid].push_back(Interval);
      } else if (R.Kind == LogRecordKind::Postlog) {
        assert(!Stack.empty() && "postlog without open interval");
        LogInterval &Interval = Intervals[Pid][Stack.back()];
        assert(Interval.EBlock == R.Id && "postlog/prelog e-block mismatch");
        Interval.PostlogRecord = Idx;
        Interval.ExitsFunction = (R.Flags & PostlogExitsFunction) != 0;
        Stack.pop_back();
      }
    }
    OpenIntervals[Pid] = std::move(Stack);
  }
}

const LogInterval *LogIndex::intervalAtRecord(uint32_t Pid,
                                              uint32_t RecordIdx) const {
  for (const LogInterval &Interval : Intervals[Pid])
    if (Interval.PrelogRecord == RecordIdx)
      return &Interval;
  return nullptr;
}

const LogInterval *LogIndex::enclosing(uint32_t Pid,
                                       uint32_t RecordIdx) const {
  const LogInterval *Best = nullptr;
  for (const LogInterval &Interval : Intervals[Pid]) {
    if (Interval.PrelogRecord > RecordIdx)
      break;
    uint32_t End = Interval.PostlogRecord == InvalidId
                       ? ~0u
                       : Interval.PostlogRecord;
    if (RecordIdx <= End)
      if (!Best || Interval.Depth >= Best->Depth)
        Best = &Interval;
  }
  return Best;
}

const LogInterval *LogIndex::lastOpenInterval(uint32_t Pid) const {
  if (OpenIntervals[Pid].empty())
    return nullptr;
  return &Intervals[Pid][OpenIntervals[Pid].back()];
}
