//===- log/PageStore.cpp - mmap-backed paged view of a v2 log -------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//

#include "log/PageStore.h"

#include "log/LogFormatV2.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define PPD_HAVE_MMAP 1
#endif

using namespace ppd;

namespace {

std::atomic<uint64_t> NextStoreId{1};

/// Same shape as the loader's helper: fan Fn across the pool when one is
/// available, degrade to a serial loop otherwise.
template <typename FnT>
void parallelFor(ThreadPool *Pool, size_t N, const FnT &Fn) {
  if (!Pool || Pool->numThreads() == 0 || N < 2) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Done{0};
  for (size_t I = 0; I != N; ++I)
    Pool->submit([&, I] {
      Fn(I);
      Done.fetch_add(1, std::memory_order_acq_rel);
    });
  while (Done.load(std::memory_order_acquire) != N)
    if (!Pool->runOneTask())
      std::this_thread::yield();
}

void setError(std::string *Error, std::string Why) {
  if (Error)
    *Error = std::move(Why);
}

} // namespace

PageStore::~PageStore() {
#ifdef PPD_HAVE_MMAP
  if (MapBase)
    ::munmap(MapBase, FileBytes);
#endif
}

std::shared_ptr<const PageStore> PageStore::open(const std::string &Path,
                                                std::string *Error) {
  // shared_ptr<PageStore> with a private ctor: construct through a local
  // subclass that re-exposes it.
  struct Openable : PageStore {};
  auto Store = std::make_shared<Openable>();
  Store->Path = Path;

  // Map the file; fall back to a heap read where mmap is unavailable
  // (or fails — e.g. a pseudo file system). Either way Data/FileBytes
  // describe the same bytes.
#ifdef PPD_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    setError(Error, "cannot open '" + Path + "'");
    return nullptr;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    setError(Error, "cannot stat '" + Path + "'");
    return nullptr;
  }
  Store->FileBytes = size_t(St.st_size);
  if (Store->FileBytes != 0) {
    void *Map = ::mmap(nullptr, Store->FileBytes, PROT_READ, MAP_PRIVATE, Fd,
                       0);
    if (Map != MAP_FAILED) {
      Store->MapBase = Map;
      Store->Data = static_cast<const uint8_t *>(Map);
    }
  }
  ::close(Fd);
#endif
  if (!Store->Data) {
    if (!readFileBytes(Path, Store->Fallback)) {
      setError(Error, "cannot read '" + Path + "'");
      return nullptr;
    }
    Store->Data = Store->Fallback.data();
    Store->FileBytes = Store->Fallback.size();
  }

  // Walk the header structure: magic/version, section extents, section
  // headers, output trailer. Record bodies are not decoded — open() cost
  // is proportional to process count, not log size.
  ByteReader R(Store->Data, Store->FileBytes);
  if (R.u32() != v2::FileMagic || !R.ok()) {
    setError(Error, "'" + Path + "' is not a PPD log (bad magic)");
    return nullptr;
  }
  uint32_t Version = R.u32();
  if (Version == uint32_t(LogFormat::V1)) {
    setError(Error, "'" + Path +
                        "' is a v1 log; run `ppd compact " + Path +
                        "` to migrate it to the paged v2 format");
    return nullptr;
  }
  if (Version != uint32_t(LogFormat::V2)) {
    setError(Error, "'" + Path + "' has unknown format version " +
                        std::to_string(Version));
    return nullptr;
  }

  uint64_t NumProcs = R.varint();
  if (!R.plausibleCount(NumProcs)) {
    setError(Error, "'" + Path + "' is corrupt (bad process count)");
    return nullptr;
  }
  Store->Sections.resize(NumProcs);
  for (uint64_t I = 0; I != NumProcs; ++I) {
    uint64_t Len = R.varint();
    if (!R.ok() || Len > R.remaining()) {
      setError(Error, "'" + Path + "' is corrupt (bad section extent)");
      return nullptr;
    }
    SectionMeta &M = Store->Sections[I];
    M.Offset = Store->FileBytes - R.remaining();
    M.EncodedBytes = Len;
    ByteReader Section = R.sub(size_t(Len));
    v2::SectionHeader Header;
    if (!v2::readSectionHeader(Section, Header)) {
      setError(Error, "'" + Path + "' is corrupt (bad section header)");
      return nullptr;
    }
    M.Pid = Header.Pid;
    M.RootFunc = Header.RootFunc;
    M.Args = std::move(Header.Args);
    M.NumRecords = Header.NumRecords;
    M.PrelogCount = Header.PrelogCount;
  }
  if (!v2::readOutput(R, Store->Output) || !R.atEnd()) {
    setError(Error, "'" + Path + "' is corrupt (bad output trailer)");
    return nullptr;
  }

  Store->StoreId = NextStoreId.fetch_add(1, std::memory_order_relaxed);
  return Store;
}

bool PageStore::decodeSection(uint32_t Pid, ProcessLog &P) const {
  assert(Pid < Sections.size() && "pid out of range");
  return v2::decodeSection(
      ByteReader(sectionData(Pid), size_t(Sections[Pid].EncodedBytes)), P);
}

bool PageStore::skimIndex(uint32_t Pid, std::vector<LogInterval> &Intervals,
                          std::vector<uint32_t> &Open) const {
  assert(Pid < Sections.size() && "pid out of range");
  return v2::skimSection(
      ByteReader(sectionData(Pid), size_t(Sections[Pid].EncodedBytes)),
      Intervals, Open);
}

ExecutionLog PageStore::facadeLog() const {
  ExecutionLog Log;
  Log.Procs.resize(Sections.size());
  for (size_t Pid = 0; Pid != Sections.size(); ++Pid) {
    const SectionMeta &M = Sections[Pid];
    ProcessLog &P = Log.Procs[Pid];
    P.Pid = M.Pid;
    P.RootFunc = M.RootFunc;
    P.Args = M.Args;
    // Records stay empty — pooled consumers pin sections instead. The
    // prelog count is real, so interval-count reservations still work.
    P.PrelogCount = uint32_t(M.PrelogCount);
  }
  Log.Output = Output;
  return Log;
}

LogIndex::LogIndex(const PageStore &Store, ThreadPool *Pool) {
  size_t NumProcs = Store.numProcs();
  Intervals.resize(NumProcs);
  OpenIntervals.resize(NumProcs);
  parallelFor(Pool, NumProcs, [&](size_t Pid) {
    bool Ok = Store.skimIndex(uint32_t(Pid), Intervals[Pid],
                              OpenIntervals[Pid]);
    // open() validated extents and headers; a skim can only fail on
    // corrupt record bytes, which decode would also reject.
    assert(Ok && "skim failed on a validated store");
    (void)Ok;
  });
}
