//===- log/ExecutionLog.h - Whole-run log and interval index ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionLog aggregates the per-process logs of one run ("there is one
/// log file for each process of a parallel program", §5.6) plus the
/// program's observable output. LogIndex derives the log-interval
/// structure (Fig 5.1/5.2): every dynamic Prelog...Postlog pair is a
/// LogInterval; intervals nest through calls and sit side by side for
/// sequential e-block segments.
///
/// Binary save/load gives the "log file" of the paper a concrete form and
/// lets the debugging phase run in a separate invocation from the
/// execution phase.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_EXECUTIONLOG_H
#define PPD_LOG_EXECUTIONLOG_H

#include "log/LogRecord.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

class PageStore;
class ThreadPool;

/// On-disk format versions. V1 is the original fixed-width stream; V2 is
/// the compact encoding (varints, delta-coded sequence numbers,
/// length-prefixed per-process sections that decode in parallel). See
/// DESIGN.md §6 "Log file format v2" for the layout.
enum class LogFormat : uint32_t { V1 = 1, V2 = 2 };

/// One observable output line: `print(e)` by process Pid.
struct OutputRecord {
  uint32_t Pid = 0;
  int64_t Value = 0;
  StmtId Stmt = InvalidId;
};

class ExecutionLog {
public:
  std::vector<ProcessLog> Procs; ///< indexed by pid.
  std::vector<OutputRecord> Output;

  ProcessLog &proc(uint32_t Pid) {
    assert(Pid < Procs.size() && "pid out of range");
    return Procs[Pid];
  }
  const ProcessLog &proc(uint32_t Pid) const {
    assert(Pid < Procs.size() && "pid out of range");
    return Procs[Pid];
  }

  /// Total approximate log volume in bytes (experiment E2).
  size_t byteSize() const;

  /// Serializes to a binary file (compact v2 by default; v1 kept for
  /// migration). With \p Pool, v2 process sections are serialized in
  /// parallel; the bytes written are identical to a serial save. Returns
  /// false on I/O errors.
  bool save(const std::string &Path, LogFormat Format = LogFormat::V2,
            ThreadPool *Pool = nullptr) const;

  /// Reads either format back, auto-detected from the header. On any I/O
  /// or format error (including truncation at every byte offset) returns
  /// false and leaves \p Out untouched. With \p Pool, v2 process sections
  /// are decoded in parallel; the result is bit-identical to a serial
  /// load.
  static bool load(const std::string &Path, ExecutionLog &Out,
                   ThreadPool *Pool = nullptr);
};

/// Outcome of a `ppd compact` in-place migration.
enum class CompactResult {
  Converted, ///< file was v1 and is now v2.
  AlreadyV2, ///< nothing to do.
  Error,     ///< open/decode/write failure; original file left untouched.
};

/// Rewrites a v1 log file as v2 in place, streaming one process section at
/// a time (peak memory is one section, never the whole log). The original
/// file is replaced only after the converted bytes are fully flushed; on
/// any error it is left untouched. \p Message carries the human-readable
/// reason for AlreadyV2/Error outcomes.
CompactResult compactLogFile(const std::string &Path, std::string &Message);

/// One dynamic log interval I_i (the execution of one e-block).
struct LogInterval {
  uint32_t Index = 0;       ///< per-process interval number, by prelog order.
  uint32_t EBlock = 0;      ///< e-block id.
  uint32_t PrelogRecord = 0; ///< index of the Prelog record in the log.
  uint32_t PostlogRecord = 0; ///< index of the matching Postlog record.
  uint32_t Parent = InvalidId; ///< enclosing interval (call nesting).
  uint32_t Depth = 0;
  bool ExitsFunction = false;
};

/// Per-process interval tree, derived from the record stream.
class LogIndex {
public:
  /// Derives the interval structure of every process. Each process's tree
  /// depends only on its own record stream, so with \p Pool the
  /// per-process constructions fan out across the workers; the result is
  /// bit-identical to the serial build. Interval vectors are pre-reserved
  /// exactly from ProcessLog::PrelogCount.
  explicit LogIndex(const ExecutionLog &Log, ThreadPool *Pool = nullptr);

  /// Derives the interval structure straight from a paged store's encoded
  /// sections (v2::skimSection): record bodies are never materialized, so
  /// index-only opens cost interval vectors, not decoded logs. Implemented
  /// in PageStore.cpp. Aborts on sections the store already validated, so
  /// it cannot fail for a successfully opened store.
  explicit LogIndex(const PageStore &Store, ThreadPool *Pool = nullptr);

  /// Adopts pre-built interval tables (the `.ppdb` sidecar's persisted
  /// index).
  LogIndex(std::vector<std::vector<LogInterval>> Intervals,
           std::vector<std::vector<uint32_t>> Open)
      : Intervals(std::move(Intervals)), OpenIntervals(std::move(Open)) {}

  size_t numProcs() const { return Intervals.size(); }

  const std::vector<LogInterval> &intervals(uint32_t Pid) const {
    return Intervals[Pid];
  }

  /// Indices of intervals whose postlog was never written, innermost last.
  const std::vector<uint32_t> &openIntervals(uint32_t Pid) const {
    return OpenIntervals[Pid];
  }

  /// The interval whose prelog record index is \p RecordIdx, or null.
  const LogInterval *intervalAtRecord(uint32_t Pid, uint32_t RecordIdx) const;

  /// The innermost interval containing record \p RecordIdx, or null.
  const LogInterval *enclosing(uint32_t Pid, uint32_t RecordIdx) const;

  /// The last interval started in process \p Pid whose postlog was never
  /// written (execution stopped inside it), or null if all completed.
  /// This is where the PPD controller begins after a failure (§5.3:
  /// "locates the last prelog whose corresponding postlog has not yet been
  /// generated").
  const LogInterval *lastOpenInterval(uint32_t Pid) const;

  /// Extends process \p Pid's interval tree with \p PL's records from
  /// index \p FromRecord (streamed ingest: the tail the tracer just
  /// shipped). The open-interval stack saved by the previous build is
  /// restored, so the result is identical to rebuilding from the whole
  /// stream. \p Pid == numProcs() grows the index by one process (new
  /// pids arrive densely). Returns false — with this process's tables
  /// unspecified — on structurally invalid input (a postlog with no open
  /// interval, or closing a different e-block than it opened), so a
  /// hostile stream is reported instead of tripping debug-only asserts.
  bool appendRecords(uint32_t Pid, const ProcessLog &PL,
                     uint32_t FromRecord);

private:
  std::vector<std::vector<LogInterval>> Intervals;
  std::vector<std::vector<uint32_t>> OpenIntervals; ///< never closed, per pid.
};

} // namespace ppd

#endif // PPD_LOG_EXECUTIONLOG_H
