//===- log/LogFormatV2.h - v2 on-disk codec internals -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v2 log format's record and section codecs, shared by the consumers
/// that must agree byte-for-byte on the encoding:
///
///   * ExecutionLog::save/load — whole-file serialization (the original
///     home of these functions);
///   * PageStore — the paged storage layer, which decodes one process
///     section at a time on buffer-pool fault-in and *skims* sections
///     (record kinds and interval structure only, no body
///     materialization) for index-only opens;
///   * compactLogFile — the streaming v1→v2 migration, which re-encodes
///     one section at a time.
///
/// Everything here is an internal interface of src/log: the layout is
/// documented in DESIGN.md §6 and changes only with a format-version
/// bump.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_LOGFORMATV2_H
#define PPD_LOG_LOGFORMATV2_H

#include "log/ExecutionLog.h"
#include "log/LogIO.h"

#include <cstdint>
#include <vector>

namespace ppd {
namespace v2 {

/// "PPDL" — shared by every format version; the u32 after it selects the
/// version (LogFormat).
inline constexpr uint32_t FileMagic = 0x5050444cu;

/// StmtId's InvalidId (~0u) maps to 0 so the common "no statement" case
/// costs one byte; uint32_t wraparound makes the mapping exact.
inline uint64_t stmtCode(uint32_t Stmt) { return uint64_t(uint32_t(Stmt + 1)); }
inline uint32_t stmtDecode(uint64_t Code) { return uint32_t(Code) - 1; }

/// Record codec. \p PrevSeq carries the per-process SyncEvent sequence
/// delta state across calls; start each section at 0.
void writeRecord(LogWriter &W, const LogRecord &R, uint64_t &PrevSeq);
bool readRecord(ByteReader &R, LogRecord &Out, uint64_t &PrevSeq);

/// The fixed prefix of one process section, before the record stream.
struct SectionHeader {
  uint32_t Pid = 0;
  uint32_t RootFunc = 0;
  std::vector<int64_t> Args;
  uint64_t NumRecords = 0;
  uint64_t PrelogCount = 0;
};

/// Reads a section header, leaving \p R positioned at the first record.
bool readSectionHeader(ByteReader &R, SectionHeader &Out);

/// Decodes one whole v2 process section into \p P. Thread-safe: touches
/// only its own section's bytes and its own ProcessLog. Validates the
/// header's prelog count against the decoded records.
bool decodeSection(ByteReader R, ProcessLog &P);

/// Skims one v2 process section: walks the record stream reading only the
/// fields interval construction needs (kind, e-block id, postlog flags)
/// and builds the LogInterval tree directly. Record bodies — captured
/// variable values, read/write sets — are skipped over, never
/// materialized. Validates as strictly as decodeSection (full-section
/// walk, prelog-count cross-check), but allocates only the interval
/// vectors.
bool skimSection(ByteReader R, std::vector<LogInterval> &Intervals,
                 std::vector<uint32_t> &Open);

/// Output-stream codec (the trailer after the process sections).
void writeOutput(LogWriter &W, const std::vector<OutputRecord> &Out);
bool readOutput(ByteReader &R, std::vector<OutputRecord> &Out);

} // namespace v2
} // namespace ppd

#endif // PPD_LOG_LOGFORMATV2_H
