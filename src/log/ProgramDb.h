//===- log/ProgramDb.h - Persisted program database sidecar -----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.ppdb` sidecar: a versioned, persisted snapshot of the
/// preparatory phase's output for one log file — the paper's "program
/// database" (§3.2.1) given durable form, so the debugging phase *opens*
/// precomputed state instead of re-deriving it (DESIGN.md §12).
///
/// Contents: the program hash and per-function chunk hashes that key the
/// sidecar to one exact compile; the def/use site tables and
/// static-graph unit edges (validated field-for-field against the fresh
/// compile on read, so a hash collision can never smuggle stale analysis
/// in); the e-block USED/DEFINED sets; the log's shape (file size and
/// per-section extents, keying the sidecar to one exact log file); the
/// full per-process LogIndex; and the parallel dynamic graph's node and
/// edge rows (§6 — constructing it is the one remaining operation that
/// scans every process's records, so persisting it is what makes a warm
/// open's cost independent of log size). On a warm open, the paged
/// debug path skips the whole-log decode, the index build/skim, *and*
/// the graph construction — open cost becomes "read sidecar, validate,
/// go", and the first query faults in only the sections it replays.
///
/// The codec reuses the bounds-checked LogIO primitives, so a truncated
/// or bit-flipped sidecar is detected at every byte offset and reported
/// as Corrupt/Stale — callers then rebuild it from the log, never trust
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_PROGRAMDB_H
#define PPD_LOG_PROGRAMDB_H

#include "log/ExecutionLog.h"

#include <cstdint>
#include <memory>
#include <string>

namespace ppd {

class CompiledProgram;
class PageStore;
class ParallelDynamicGraph;

/// Sidecar path convention: the log's own path plus ".ppdb".
std::string programDbPathFor(const std::string &LogPath);

/// Stable hash over everything the preparatory phase produced that the
/// debugging phase consumes: function metadata, both bytecode artifacts
/// (opcodes, operands, statement attributions), e-block USED/DEFINED
/// sets, synchronization units, semaphore/channel initializers, and the
/// instrumentation option. Any recompile that changes debugging-visible
/// state changes this hash.
uint64_t programHash(const CompiledProgram &Prog);

enum class ProgramDbStatus {
  Ok,      ///< sidecar valid for this exact program + log; index adopted.
  Missing, ///< no sidecar file.
  Stale,   ///< sidecar was written for a different program or log.
  Corrupt, ///< truncated or malformed bytes.
};

const char *programDbStatusName(ProgramDbStatus Status);

/// Writes the sidecar for (\p Prog, \p Store, \p Index) to \p Path
/// atomically (temp file + rename). \p Graph is the parallel dynamic
/// graph to persist; pass null to have it built here by decoding the
/// store's sections one at a time (preparatory-phase cost — peak memory
/// is one section). False on I/O failure or a corrupt section.
bool writeProgramDb(const std::string &Path, const CompiledProgram &Prog,
                    const PageStore &Store, const LogIndex &Index,
                    const ParallelDynamicGraph *Graph = nullptr);

/// Reads and validates \p Path against the freshly compiled \p Prog and
/// the opened \p Store. On Ok, \p IndexOut receives the persisted
/// LogIndex and, when \p GraphOut is non-null, *GraphOut the persisted
/// parallel dynamic graph (clocks recomputed); on any other status both
/// are untouched and the caller should rebuild (and usually rewrite)
/// the sidecar.
ProgramDbStatus
readProgramDb(const std::string &Path, const CompiledProgram &Prog,
              const PageStore &Store,
              std::shared_ptr<const LogIndex> &IndexOut,
              std::shared_ptr<const ParallelDynamicGraph> *GraphOut = nullptr);

} // namespace ppd

#endif // PPD_LOG_PROGRAMDB_H
