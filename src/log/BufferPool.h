//===- log/BufferPool.h - Shared LRU pool of decoded sections ---*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BufferPool caches decoded process sections under a byte budget — the
/// memory half of the paged log tier (DESIGN.md §12). One pool is shared
/// by every session of a server (and by the single session of `ppd
/// debug`), so resident decoded-log memory is bounded by the budget plus
/// whatever is pinned, no matter how many programs are hosted.
///
/// The design follows the classic database buffer-pool split (InnoDB's
/// handler/buffer-pool seam is the idiom reference): the PageStore knows
/// how to materialize a page (decode a section), the pool decides which
/// materialized pages stay resident. Frames are keyed by (store id, pid),
/// LRU-ordered per shard, and pinned by refcount while a replay walks
/// them; eviction takes unpinned frames from the cold end. Concurrent
/// faults of the same section single-flight: one thread decodes, the
/// rest wait on the shard's condvar and share the frame.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_BUFFERPOOL_H
#define PPD_LOG_BUFFERPOOL_H

#include "log/LogRecord.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ppd {

class PageStore;

/// Monotonic counters plus a point-in-time residency snapshot, surfaced
/// through `stats` and the server's /metrics.
struct BufferPoolStats {
  uint64_t Hits = 0;       ///< pin() served from a resident frame.
  uint64_t Misses = 0;     ///< pin() had to decode (includes failures).
  uint64_t Evictions = 0;  ///< frames dropped for budget.
  uint64_t Insertions = 0; ///< frames decoded and admitted.
  size_t BytesResident = 0;
  size_t BytesPinned = 0;
  size_t Entries = 0;
  size_t PeakBytes = 0; ///< high-water resident bytes.
  size_t Budget = 0;
};

class BufferPool {
public:
  /// \p BudgetBytes bounds resident decoded sections (pinned frames can
  /// exceed it — correctness needs the pinned section regardless of
  /// budget). Shard count is rounded to a power of two.
  explicit BufferPool(size_t BudgetBytes, unsigned NumShards = 8);
  ~BufferPool();

  BufferPool(const BufferPool &) = delete;
  BufferPool &operator=(const BufferPool &) = delete;

  /// One resident decoded section. The refcount (not the shared_ptr use
  /// count) is what eviction consults: shard bookkeeping also holds the
  /// shared_ptr, so liveness and pinnedness are separate notions.
  struct Frame {
    ProcessLog Log;
    size_t Bytes = 0; ///< in-memory footprint (records + spilled vectors).
    std::atomic<uint32_t> Pins{0};
  };

  /// RAII pin on one decoded section. While alive, the frame cannot be
  /// evicted and log() is stable. A default/failed Pin is falsy.
  class Pin {
  public:
    Pin() = default;
    Pin(Pin &&Other) noexcept : F(std::move(Other.F)) { Other.F = nullptr; }
    Pin &operator=(Pin &&Other) noexcept {
      if (this != &Other) {
        release();
        F = std::move(Other.F);
        Other.F = nullptr;
      }
      return *this;
    }
    Pin(const Pin &) = delete;
    Pin &operator=(const Pin &) = delete;
    ~Pin() { release(); }

    explicit operator bool() const { return F != nullptr; }
    const ProcessLog &log() const { return F->Log; }

  private:
    friend class BufferPool;
    explicit Pin(std::shared_ptr<Frame> F) : F(std::move(F)) {}
    void release() {
      if (F) {
        F->Pins.fetch_sub(1, std::memory_order_release);
        F = nullptr;
      }
    }
    std::shared_ptr<Frame> F;
  };

  /// Faults in process \p Pid of \p Store: resident → LRU-front + pin
  /// (hit); absent → decode, admit, pin (miss), evicting cold unpinned
  /// frames if over budget. Returns a falsy Pin iff the section fails to
  /// decode (corrupt bytes under an already-validated header).
  Pin pin(const PageStore &Store, uint32_t Pid);

  /// Drops every unpinned frame belonging to \p Store (session teardown
  /// hygiene; pinned frames stay until released, then age out by LRU).
  void dropStore(const PageStore &Store);

  BufferPoolStats stats() const;
  size_t budget() const { return Budget; }

private:
  struct Shard;

  uint64_t keyOf(const PageStore &Store, uint32_t Pid) const;
  Shard &shardFor(uint64_t Key);
  void evictCold(Shard &S);

  size_t Budget;
  size_t ShardBudget;
  std::vector<std::unique_ptr<Shard>> Shards;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Insertions{0};
  std::atomic<size_t> Resident{0};
  std::atomic<size_t> Peak{0};
};

} // namespace ppd

#endif // PPD_LOG_BUFFERPOOL_H
