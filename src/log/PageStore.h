//===- log/PageStore.h - mmap-backed paged view of a v2 log -----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PageStore is a read-only, mmap-backed view of a v2 log file that
/// exposes each process section as an independently decodable extent —
/// the storage half of the paged log tier (DESIGN.md §12). Opening a
/// store costs one mmap plus a header walk (section length prefixes and
/// section headers only); record bodies stay on disk until a BufferPool
/// faults a section in, and the kernel pages the mapped bytes in and out
/// underneath.
///
/// The v2 format was built for exactly this slicing: the file is
/// magic/version, a process count, then length-prefixed self-contained
/// sections, then the output trailer. Every section decodes (or skims)
/// from its own byte range with no shared state, so fault-in is
/// trivially parallel and a skim-built LogIndex never touches record
/// bodies at all.
///
/// PageStores are immutable after open() and shared by shared_ptr: one
/// store serves every session debugging that log, keyed into the shared
/// BufferPool by its process-unique id().
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_PAGESTORE_H
#define PPD_LOG_PAGESTORE_H

#include "log/ExecutionLog.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ppd {

class BufferPool;

class PageStore {
public:
  /// One process section's header fields plus its byte extent. Parsed
  /// eagerly at open() — the header is a few varints; the record stream
  /// (NumRecords records, EncodedBytes total) is what stays cold.
  struct SectionMeta {
    uint32_t Pid = 0;
    uint32_t RootFunc = 0;
    std::vector<int64_t> Args;
    uint64_t NumRecords = 0;
    uint64_t PrelogCount = 0;
    uint64_t EncodedBytes = 0; ///< whole section: header + records.
    size_t Offset = 0;         ///< section start within the file.
  };

  /// Maps \p Path and validates the header, section extents, section
  /// headers, and output trailer (record bodies are not decoded). Returns
  /// null on failure with a human-readable reason in \p Error; a v1 file
  /// is a failure that names `ppd compact` as the fix.
  static std::shared_ptr<const PageStore> open(const std::string &Path,
                                               std::string *Error = nullptr);

  ~PageStore();
  PageStore(const PageStore &) = delete;
  PageStore &operator=(const PageStore &) = delete;

  uint32_t numProcs() const { return uint32_t(Sections.size()); }
  const SectionMeta &section(uint32_t Pid) const { return Sections[Pid]; }
  const std::vector<OutputRecord> &output() const { return Output; }
  const std::string &path() const { return Path; }
  size_t fileBytes() const { return FileBytes; }

  /// Process-unique store identity, assigned at open(). BufferPool keys
  /// frames by (id, pid), so re-opening the same file never aliases stale
  /// pool entries.
  uint64_t id() const { return StoreId; }

  /// Decodes process \p Pid's full section into \p P (the buffer pool's
  /// fault-in path). Thread-safe; touches only that section's bytes.
  /// False if the record stream is corrupt.
  bool decodeSection(uint32_t Pid, ProcessLog &P) const;

  /// Builds process \p Pid's interval tree straight from the encoded
  /// bytes (v2::skimSection): record bodies are never materialized.
  bool skimIndex(uint32_t Pid, std::vector<LogInterval> &Intervals,
                 std::vector<uint32_t> &Open) const;

  /// An ExecutionLog with every per-process header (pid, root function,
  /// args, prelog count) and the output trailer filled in, but empty
  /// record streams. Pooled sessions hold this facade wherever the
  /// whole-load path held a real log — consumers that only need process
  /// count, headers, or output work unchanged; record access goes through
  /// BufferPool pins.
  ExecutionLog facadeLog() const;

private:
  PageStore() = default;

  /// The encoded byte range of one section (header + records).
  const uint8_t *sectionData(uint32_t Pid) const {
    return Data + Sections[Pid].Offset;
  }

  std::string Path;
  uint64_t StoreId = 0;

  // The file's bytes: an mmap when available, else a heap copy. Data/
  // FileBytes always describe the usable span.
  const uint8_t *Data = nullptr;
  size_t FileBytes = 0;
  void *MapBase = nullptr; ///< non-null iff mmap'd (munmap target).
  std::vector<uint8_t> Fallback;

  std::vector<SectionMeta> Sections;
  std::vector<OutputRecord> Output;
};

/// A paged log: the immutable store plus the pool that faults its
/// sections in. The unit the pooled controller/session stack passes
/// around where the whole-load path passed an ExecutionLog.
struct PagedLog {
  std::shared_ptr<const PageStore> Store;
  std::shared_ptr<BufferPool> Pool;

  explicit operator bool() const { return Store != nullptr && Pool != nullptr; }
};

} // namespace ppd

#endif // PPD_LOG_PAGESTORE_H
