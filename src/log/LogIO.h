//===- log/LogIO.h - Log file I/O primitives --------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level machinery under ExecutionLog::save/load:
///
///   * FileHandle — RAII ownership of a C stdio stream, so no early return
///     in the load/save paths can leak a FILE*;
///   * LogWriter — an in-memory byte buffer with fixed-width, LEB128
///     varint, and zigzag emitters; serialization batches into it and hits
///     the file with one fwrite instead of one call per field;
///   * ByteReader — bounds-checked decoding over an in-memory span, with
///     the same three codecs. Sub-spans let the v2 loader hand each
///     process section to a different thread.
///
/// Multi-byte fixed-width values use the host's (little-endian) layout,
/// matching the v1 files written by fwrite-of-struct-fields.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_LOGIO_H
#define PPD_LOG_LOGIO_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace ppd {

/// RAII wrapper for std::fopen/fclose.
class FileHandle {
public:
  FileHandle(const std::string &Path, const char *Mode)
      : File(std::fopen(Path.c_str(), Mode)) {}
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
  ~FileHandle() {
    if (File)
      std::fclose(File);
  }

  explicit operator bool() const { return File != nullptr; }
  FILE *get() const { return File; }

  /// Closes now; true iff the stream flushed cleanly. Safe to call once.
  bool close() {
    if (!File)
      return false;
    bool Ok = std::fclose(File) == 0;
    File = nullptr;
    return Ok;
  }

private:
  FILE *File;
};

/// ZigZag maps small-magnitude signed values onto small unsigned varints.
inline uint64_t zigzagEncode(int64_t V) {
  return (uint64_t(V) << 1) ^ uint64_t(V >> 63);
}
inline int64_t zigzagDecode(uint64_t V) {
  return int64_t(V >> 1) ^ -int64_t(V & 1);
}

/// Buffered serialization sink. A raw tail-pointer buffer rather than a
/// std::vector of bytes: the save path emits hundreds of thousands of
/// one-byte varint pieces, and a single capacity check per field (not per
/// byte) is what keeps compact-format saves faster than v1's fixed-width
/// stream.
class LogWriter {
public:
  LogWriter() = default;
  LogWriter(const LogWriter &) = delete;
  LogWriter &operator=(const LogWriter &) = delete;
  LogWriter(LogWriter &&Other) noexcept
      : Begin(Other.Begin), Cur(Other.Cur), End(Other.End) {
    Other.Begin = Other.Cur = Other.End = nullptr;
  }
  LogWriter &operator=(LogWriter &&Other) noexcept {
    if (this != &Other) {
      ::operator delete(Begin);
      Begin = Other.Begin;
      Cur = Other.Cur;
      End = Other.End;
      Other.Begin = Other.Cur = Other.End = nullptr;
    }
    return *this;
  }
  ~LogWriter() { ::operator delete(Begin); }

  void u8(uint8_t V) {
    ensure(1);
    *Cur++ = V;
  }
  void u32(uint32_t V) { fixed(&V, 4); }
  void u64(uint64_t V) { fixed(&V, 8); }
  void i64(int64_t V) { fixed(&V, 8); }

  /// LEB128. One capacity check covers the worst-case 10 bytes.
  void varint(uint64_t V) {
    ensure(10);
    varintUnchecked(V);
  }
  void svarint(int64_t V) { varint(zigzagEncode(V)); }

  /// Unchecked emitters: callers that know a record's worst-case size can
  /// hoist one ensure() over a burst of fields instead of paying a
  /// capacity branch per field (the v2 record writer's hot loop).
  void ensureBytes(size_t N) { ensure(N); }
  void u8Unchecked(uint8_t V) { *Cur++ = V; }
  void varintUnchecked(uint64_t V) {
    while (V >= 0x80) {
      *Cur++ = uint8_t(V) | 0x80;
      V >>= 7;
    }
    *Cur++ = uint8_t(V);
  }
  void svarintUnchecked(int64_t V) { varintUnchecked(zigzagEncode(V)); }

  void bytes(const LogWriter &Other) {
    size_t N = Other.size();
    ensure(N);
    std::memcpy(Cur, Other.Begin, N);
    Cur += N;
  }

  void reserve(size_t N) {
    if (capacity() < N)
      grow(N - size());
  }

  size_t size() const { return size_t(Cur - Begin); }
  const uint8_t *data() const { return Begin; }
  void clear() { Cur = Begin; }

  /// One open + one fwrite + one close.
  bool writeFile(const std::string &Path) const {
    FileHandle File(Path, "wb");
    if (!File)
      return false;
    if (size() != 0 &&
        std::fwrite(Begin, 1, size(), File.get()) != size())
      return false;
    return File.close();
  }

private:
  size_t capacity() const { return size_t(End - Begin); }

  void fixed(const void *Data, size_t Size) {
    ensure(Size);
    std::memcpy(Cur, Data, Size);
    Cur += Size;
  }

  void ensure(size_t N) {
    if (size_t(End - Cur) < N)
      grow(N);
  }

  void grow(size_t N) {
    size_t Size = this->size();
    size_t NewCap = capacity() < 64 ? 64 : capacity() * 2;
    while (NewCap - Size < N)
      NewCap *= 2;
    uint8_t *NewBuf = static_cast<uint8_t *>(::operator new(NewCap));
    if (Size != 0)
      std::memcpy(NewBuf, Begin, Size);
    ::operator delete(Begin);
    Begin = NewBuf;
    Cur = NewBuf + Size;
    End = NewBuf + NewCap;
  }

  uint8_t *Begin = nullptr;
  uint8_t *Cur = nullptr;
  uint8_t *End = nullptr;
};

/// Bounds-checked decoder over an in-memory byte span. Any read past the
/// end (truncation, corrupt counts) latches the failed state and returns
/// zeros from then on.
class ByteReader {
public:
  ByteReader() = default;
  ByteReader(const uint8_t *Data, size_t Size) : Cur(Data), End(Data + Size) {}

  bool ok() const { return !Failed; }
  void fail() { Failed = true; }
  size_t remaining() const { return size_t(End - Cur); }
  bool atEnd() const { return Cur == End; }

  uint8_t u8() {
    uint8_t V = 0;
    fixed(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    fixed(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    fixed(&V, 8);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    fixed(&V, 8);
    return V;
  }

  uint64_t varint() {
    // Fast path: the overwhelmingly common one-byte encoding.
    if (!Failed && Cur != End && *Cur < 0x80) [[likely]]
      return *Cur++;
    uint64_t V = 0;
    unsigned Shift = 0;
    for (;;) {
      if (Failed || Cur == End || Shift > 63) {
        Failed = true;
        return 0;
      }
      uint8_t B = *Cur++;
      V |= uint64_t(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
      Shift += 7;
    }
  }
  int64_t svarint() { return zigzagDecode(varint()); }

  /// Splits off the next \p Size bytes as an independent reader (a v2
  /// process section). Fails both readers on overrun.
  ByteReader sub(size_t Size) {
    if (Failed || Size > remaining()) {
      Failed = true;
      return ByteReader();
    }
    ByteReader R(Cur, Size);
    Cur += Size;
    return R;
  }

  /// Guards container pre-reservation against corrupt counts.
  bool plausibleCount(uint64_t N) {
    // A count can never exceed the bytes that remain to encode it: every
    // element costs at least one byte.
    if (N <= remaining() && N <= (uint64_t(1) << 28))
      return true;
    Failed = true;
    return false;
  }

private:
  void fixed(void *Data, size_t Size) {
    if (Failed || size_t(End - Cur) < Size) {
      Failed = true;
      return;
    }
    std::memcpy(Data, Cur, Size);
    Cur += Size;
  }

  const uint8_t *Cur = nullptr;
  const uint8_t *End = nullptr;
  bool Failed = false;
};

/// Reads a whole file into \p Out. False on open/read errors.
inline bool readFileBytes(const std::string &Path,
                          std::vector<uint8_t> &Out) {
  FileHandle File(Path, "rb");
  if (!File)
    return false;
  if (std::fseek(File.get(), 0, SEEK_END) != 0)
    return false;
  long Size = std::ftell(File.get());
  if (Size < 0 || std::fseek(File.get(), 0, SEEK_SET) != 0)
    return false;
  Out.resize(size_t(Size));
  return Out.empty() ||
         std::fread(Out.data(), 1, Out.size(), File.get()) == Out.size();
}

} // namespace ppd

#endif // PPD_LOG_LOGIO_H
