//===- log/BufferPool.cpp - Shared LRU pool of decoded sections -----------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//

#include "log/BufferPool.h"

#include "log/PageStore.h"

#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace ppd;

namespace {

/// In-memory footprint of a decoded section: the record array plus every
/// vector that spilled past its inline capacity. This is the currency the
/// budget is charged in — actual resident bytes, not encoded file bytes
/// (decoded records are several times larger than their varint encoding).
size_t residentBytes(const ProcessLog &P) {
  size_t Bytes = sizeof(ProcessLog) + P.Args.capacity() * sizeof(int64_t) +
                 P.Records.size() * sizeof(LogRecord);
  for (const LogRecord &R : P.Records) {
    if (R.Vars.size() > 2)
      Bytes += R.Vars.size() * sizeof(VarValue);
    for (const VarValue &V : R.Vars)
      if (V.Values.size() > 2)
        Bytes += V.Values.size() * sizeof(int64_t);
    if (R.ReadSet.size() > 4)
      Bytes += R.ReadSet.size() * sizeof(uint32_t);
    if (R.WriteSet.size() > 4)
      Bytes += R.WriteSet.size() * sizeof(uint32_t);
  }
  return Bytes;
}

} // namespace

/// One shard: an LRU list of frames plus the in-flight decode set. All
/// fields are guarded by M except the frames' atomic pin counts.
struct BufferPool::Shard {
  using LruList = std::list<std::pair<uint64_t, std::shared_ptr<Frame>>>;

  std::mutex M;
  std::condition_variable DecodeDone;
  LruList Lru; ///< front = hottest.
  std::unordered_map<uint64_t, LruList::iterator> Map;
  std::unordered_set<uint64_t> Loading; ///< single-flight decode keys.
  size_t Bytes = 0;
};

BufferPool::BufferPool(size_t BudgetBytes, unsigned NumShards)
    : Budget(BudgetBytes) {
  unsigned N = 1;
  while (N < NumShards && N < 64)
    N <<= 1;
  Shards.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardBudget = Budget / N;
}

BufferPool::~BufferPool() = default;

uint64_t BufferPool::keyOf(const PageStore &Store, uint32_t Pid) const {
  // Store ids are a process-lifetime counter and pids are per-log process
  // indices; both are far below their field widths.
  return (Store.id() << 24) | uint64_t(Pid);
}

BufferPool::Shard &BufferPool::shardFor(uint64_t Key) {
  // Multiplicative mix so consecutive pids of one store spread across
  // shards instead of clustering.
  uint64_t H = Key * 0x9e3779b97f4a7c15ull;
  return *Shards[(H >> 32) & (Shards.size() - 1)];
}

BufferPool::Pin BufferPool::pin(const PageStore &Store, uint32_t Pid) {
  uint64_t Key = keyOf(Store, Pid);
  Shard &S = shardFor(Key);

  std::unique_lock<std::mutex> Lock(S.M);
  for (;;) {
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      // Hit: bump to hottest, pin under the shard lock (eviction also
      // runs under it, so a frame observed here cannot vanish).
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      std::shared_ptr<Frame> F = It->second->second;
      F->Pins.fetch_add(1, std::memory_order_acquire);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return Pin(std::move(F));
    }
    if (!S.Loading.contains(Key))
      break;
    // Another thread is decoding this very section; share its result.
    S.DecodeDone.wait(Lock);
  }

  // Miss: decode outside the lock — fault-in is the expensive step and
  // other sections of this shard must stay pinnable meanwhile.
  S.Loading.insert(Key);
  Lock.unlock();
  auto F = std::make_shared<Frame>();
  bool Ok = Store.decodeSection(Pid, F->Log);
  if (Ok)
    F->Bytes = residentBytes(F->Log);
  Lock.lock();
  S.Loading.erase(Key);
  S.DecodeDone.notify_all();
  Misses.fetch_add(1, std::memory_order_relaxed);
  if (!Ok)
    return Pin(); // corrupt section; never admitted, so retried next pin.

  F->Pins.store(1, std::memory_order_relaxed);
  S.Lru.emplace_front(Key, F);
  S.Map[Key] = S.Lru.begin();
  S.Bytes += F->Bytes;
  Insertions.fetch_add(1, std::memory_order_relaxed);
  size_t Now = Resident.fetch_add(F->Bytes, std::memory_order_relaxed) +
               F->Bytes;
  size_t P = Peak.load(std::memory_order_relaxed);
  while (Now > P && !Peak.compare_exchange_weak(P, Now))
    ;
  evictCold(S);
  return Pin(std::move(F));
}

/// Drops unpinned frames from the cold end until the shard is within its
/// slice of the budget (or only pinned/single frames remain). Caller
/// holds the shard lock. Pinned frames are skipped, which is exactly the
/// "budget + O(pinned)" residency bound: the overshoot is at most what
/// replay currently holds pinned.
void BufferPool::evictCold(Shard &S) {
  auto It = S.Lru.end();
  while (S.Bytes > ShardBudget && S.Lru.size() > 1 && It != S.Lru.begin()) {
    --It;
    if (It->second->Pins.load(std::memory_order_acquire) > 0)
      continue;
    S.Bytes -= It->second->Bytes;
    Resident.fetch_sub(It->second->Bytes, std::memory_order_relaxed);
    Evictions.fetch_add(1, std::memory_order_relaxed);
    S.Map.erase(It->first);
    It = S.Lru.erase(It);
  }
}

void BufferPool::dropStore(const PageStore &Store) {
  uint64_t StoreBits = Store.id() << 24;
  for (auto &ShardPtr : Shards) {
    Shard &S = *ShardPtr;
    std::lock_guard<std::mutex> Lock(S.M);
    for (auto It = S.Lru.begin(); It != S.Lru.end();) {
      if ((It->first & ~uint64_t(0xffffff)) != StoreBits ||
          It->second->Pins.load(std::memory_order_acquire) > 0) {
        ++It;
        continue;
      }
      S.Bytes -= It->second->Bytes;
      Resident.fetch_sub(It->second->Bytes, std::memory_order_relaxed);
      S.Map.erase(It->first);
      It = S.Lru.erase(It);
    }
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats Out;
  Out.Hits = Hits.load(std::memory_order_relaxed);
  Out.Misses = Misses.load(std::memory_order_relaxed);
  Out.Evictions = Evictions.load(std::memory_order_relaxed);
  Out.Insertions = Insertions.load(std::memory_order_relaxed);
  Out.PeakBytes = Peak.load(std::memory_order_relaxed);
  Out.Budget = Budget;
  for (const auto &ShardPtr : Shards) {
    Shard &S = *ShardPtr;
    std::lock_guard<std::mutex> Lock(S.M);
    Out.BytesResident += S.Bytes;
    Out.Entries += S.Lru.size();
    for (const auto &[Key, F] : S.Lru)
      if (F->Pins.load(std::memory_order_relaxed) > 0)
        Out.BytesPinned += F->Bytes;
  }
  return Out;
}
