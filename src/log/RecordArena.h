//===- log/RecordArena.h - Bump arena + chunked record storage --*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for the execution-phase log's record streams. A growing
/// std::vector<LogRecord> re-allocates and moves every record already
/// emitted — O(n) bursts in the middle of the latency-critical execution
/// phase, exactly the cost profile the paper's <15% overhead bound (§7)
/// forbids. RecordStore instead appends into fixed-size chunks carved from
/// a RecordArena bump allocator: appends are O(1) with no moves, records
/// have stable addresses for the lifetime of the log (the VM hands out
/// `LogRecord &` across instruction boundaries), and teardown frees whole
/// blocks instead of walking an allocation list.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_RECORDARENA_H
#define PPD_LOG_RECORDARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace ppd {

/// A bump allocator: carves aligned allocations out of geometrically
/// growing blocks, frees everything at once on destruction. Never runs
/// element destructors — callers own object lifetimes.
class RecordArena {
public:
  RecordArena() = default;
  RecordArena(RecordArena &&) = default;
  RecordArena &operator=(RecordArena &&) = default;
  RecordArena(const RecordArena &) = delete;
  RecordArena &operator=(const RecordArena &) = delete;

  ~RecordArena() { reset(); }

  void *allocate(size_t Bytes, size_t Align) {
    size_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (!Ptr || Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      newBlock(Bytes, Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Ptr = reinterpret_cast<char *>(Aligned + Bytes);
    return reinterpret_cast<void *>(Aligned);
  }

  /// Frees every block. All objects allocated from this arena die with it.
  void reset() {
    for (const Block &B : Blocks)
      ::operator delete(B.Data, std::align_val_t(BlockAlign));
    Blocks.clear();
    Ptr = End = nullptr;
  }

  size_t bytesAllocated() const {
    size_t Total = 0;
    for (const Block &B : Blocks)
      Total += B.Size;
    return Total;
  }

private:
  static constexpr size_t FirstBlockBytes = 1 << 14; // 16 KiB
  static constexpr size_t MaxBlockBytes = 1 << 20;   // 1 MiB
  static constexpr size_t BlockAlign = alignof(std::max_align_t);

  void newBlock(size_t MinBytes, size_t Align) {
    size_t Want = Blocks.empty()
                      ? FirstBlockBytes
                      : std::min(Blocks.back().Size * 2, MaxBlockBytes);
    if (Want < MinBytes + Align)
      Want = MinBytes + Align;
    char *Data = static_cast<char *>(
        ::operator new(Want, std::align_val_t(BlockAlign)));
    Blocks.push_back({Data, Want});
    Ptr = Data;
    End = Data + Want;
  }

  struct Block {
    char *Data;
    size_t Size;
  };
  std::vector<Block> Blocks;
  char *Ptr = nullptr;
  char *End = nullptr;
};

/// A chunked sequence of T backed by a RecordArena: stable addresses,
/// O(1) append with no element moves, indexed access via one shift + mask.
/// Exposes exactly the std::vector surface the log's consumers use.
template <typename T, unsigned ChunkShift = 8> class RecordStore {
  static constexpr size_t ChunkLen = size_t(1) << ChunkShift;
  static constexpr size_t ChunkMask = ChunkLen - 1;

public:
  RecordStore() = default;

  RecordStore(RecordStore &&Other) noexcept
      : Arena(std::move(Other.Arena)), Chunks(std::move(Other.Chunks)),
        Count(Other.Count) {
    Other.Chunks.clear();
    Other.Count = 0;
  }

  RecordStore &operator=(RecordStore &&Other) noexcept {
    if (this != &Other) {
      destroyAll();
      Arena = std::move(Other.Arena);
      Chunks = std::move(Other.Chunks);
      Count = Other.Count;
      Other.Chunks.clear();
      Other.Count = 0;
    }
    return *this;
  }

  RecordStore(const RecordStore &Other) {
    reserve(Other.Count);
    for (const T &V : Other)
      emplace_back(V);
  }

  RecordStore &operator=(const RecordStore &Other) {
    if (this != &Other) {
      destroyAll();
      reserve(Other.Count);
      for (const T &V : Other)
        emplace_back(V);
    }
    return *this;
  }

  ~RecordStore() { destroyAll(); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](size_t I) {
    assert(I < Count && "record index out of range");
    return Chunks[I >> ChunkShift][I & ChunkMask];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "record index out of range");
    return Chunks[I >> ChunkShift][I & ChunkMask];
  }
  T &back() {
    assert(Count && "back of empty store");
    return (*this)[Count - 1];
  }
  const T &back() const {
    assert(Count && "back of empty store");
    return (*this)[Count - 1];
  }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Count == Chunks.size() * ChunkLen)
      Chunks.push_back(static_cast<T *>(
          Arena.allocate(ChunkLen * sizeof(T), alignof(T))));
    T *Slot = Chunks[Count >> ChunkShift] + (Count & ChunkMask);
    ::new (static_cast<void *>(Slot)) T(std::forward<Args>(A)...);
    ++Count;
    return *Slot;
  }
  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }

  /// Pre-allocates chunk storage for \p Cap elements (no construction).
  void reserve(size_t Cap) {
    Chunks.reserve((Cap + ChunkLen - 1) >> ChunkShift);
    while (Chunks.size() * ChunkLen < Cap)
      Chunks.push_back(static_cast<T *>(
          Arena.allocate(ChunkLen * sizeof(T), alignof(T))));
  }

  void clear() { destroyAll(); }

  template <bool Const> class IterImpl {
    using Store = std::conditional_t<Const, const RecordStore, RecordStore>;
    using Ref = std::conditional_t<Const, const T &, T &>;

  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = ptrdiff_t;
    using pointer = std::conditional_t<Const, const T *, T *>;
    using reference = Ref;

    IterImpl() = default;
    IterImpl(Store *S, size_t I) : S(S), I(I) {}
    Ref operator*() const { return (*S)[I]; }
    pointer operator->() const { return &(*S)[I]; }
    IterImpl &operator++() {
      ++I;
      return *this;
    }
    IterImpl operator++(int) {
      IterImpl Tmp = *this;
      ++I;
      return Tmp;
    }
    friend bool operator==(const IterImpl &A, const IterImpl &B) {
      return A.I == B.I;
    }
    friend bool operator!=(const IterImpl &A, const IterImpl &B) {
      return A.I != B.I;
    }

  private:
    Store *S = nullptr;
    size_t I = 0;
  };

  using iterator = IterImpl<false>;
  using const_iterator = IterImpl<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, Count}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Count}; }

private:
  void destroyAll() {
    for (size_t I = 0; I != Count; ++I)
      (*this)[I].~T();
    Chunks.clear();
    Count = 0;
    Arena.reset();
  }

  RecordArena Arena;
  std::vector<T *> Chunks;
  size_t Count = 0;
};

} // namespace ppd

#endif // PPD_LOG_RECORDARENA_H
