//===- log/LogRecord.h - Execution-phase log records ------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The log generated during the execution phase (paper Fig 3.2): one log
/// per process, holding
///
///   * **prelogs** — values of USED(i) at each e-block entry,
///   * **postlogs** — values of DEFINED(i) at each e-block exit (plus the
///     return value when the exit leaves the function), enabling both
///     nested-interval skipping (Fig 5.2) and state restoration (§5.7),
///   * **unit logs** — the additional prelogs of shared variables at
///     synchronization-unit entries (§5.5),
///   * **input records** — values consumed by `input()`, so replay feeds
///     "the same input as originally fed to the program" (§3.2.2),
///   * **sync events** — one record per synchronization operation,
///     carrying the matching information for synchronization edges (§6.2)
///     and the shared READ/WRITE sets of the internal edge that just ended
///     (Defs 6.2–6.3). Receive events carry the received value so replay
///     needs no co-process.
///
/// The replay engine consumes a process's records strictly in order; both
/// compiled artifacts emit/consume in the same sequence by construction.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_LOG_LOGRECORD_H
#define PPD_LOG_LOGRECORD_H

#include "lang/Ast.h"
#include "log/RecordArena.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

enum class LogRecordKind : uint8_t {
  Prelog,
  Postlog,
  UnitLog,
  Input,
  SyncEvent,
  Stop, ///< the machine froze here (failure elsewhere, breakpoint, user
        ///< halt): replay of this process stops exactly at this point
        ///< instead of running ahead of what actually executed.
};

/// Which synchronization operation a SyncEvent describes.
enum class SyncKind : uint8_t {
  ProcStart,       ///< process began (PartnerSeq = parent's SpawnChild, or
                   ///< none for the root process)
  ProcEnd,         ///< process terminated
  SemAcquire,      ///< P completed (PartnerSeq = enabling V, if any)
  SemSignal,       ///< V executed
  ChanSend,        ///< message enqueued or handed off
  ChanSendUnblock, ///< blocked sender resumed (PartnerSeq = the receive)
  ChanRecv,        ///< message received (PartnerSeq = the send; Value =
                   ///< message payload)
  SpawnChild,      ///< spawn executed (Value = child pid)
  Stopped,         ///< machine froze with this process mid-edge (blocked
                   ///< at a deadlock, or preempted when another process
                   ///< failed / a breakpoint hit): flushes the trailing
                   ///< READ/WRITE sets accumulated since the last sync
                   ///< node so races in the unterminated final segment
                   ///< stay visible to §6.4 detection.
};

const char *syncKindName(SyncKind Kind);

/// A variable's captured contents: one value for scalars, ArraySize values
/// for arrays. Inline storage covers scalars and 2-element arrays; only
/// larger arrays spill — the emit path's common case never allocates.
struct VarValue {
  VarId Var = InvalidId;
  SmallVec<int64_t, 2> Values;
};

/// Sentinel for "no partner" in SyncEvent records.
inline constexpr uint64_t NoPartner = ~0ull;

struct LogRecord {
  LogRecordKind Kind = LogRecordKind::Input;
  /// E-block id (Prelog/Postlog), unit id (UnitLog), semaphore/channel id
  /// (SyncEvent).
  uint32_t Id = 0;
  /// PostlogFlags for Postlog records.
  uint32_t Flags = 0;
  /// Return value (Postlog with PostlogExitsFunction), input value,
  /// received value, or spawned child pid.
  int64_t Value = 0;
  /// Global synchronization sequence number (SyncEvent only).
  uint64_t Seq = 0;
  uint64_t PartnerSeq = NoPartner;
  SyncKind Sync = SyncKind::ProcStart;
  /// Originating statement, when known (SyncEvent).
  StmtId Stmt = InvalidId;
  /// Captured variable values (Prelog/Postlog/UnitLog).
  SmallVec<VarValue, 2> Vars;
  /// Shared-variable indices read/written on the internal edge ending at
  /// this SyncEvent (race detection, Def 6.2), in ascending order.
  SmallVec<uint32_t, 4> ReadSet;
  SmallVec<uint32_t, 4> WriteSet;

  /// Approximate on-disk size in bytes; the currency of experiment E2
  /// (incremental-log volume vs full-trace volume).
  size_t byteSize() const;
};

/// The record stream of one process: arena-chunked, so appends during the
/// execution phase never re-allocate or move already-emitted records.
using RecordSeq = RecordStore<LogRecord>;

/// The log of one process, in emission order.
struct ProcessLog {
  uint32_t Pid = 0;
  uint32_t RootFunc = 0;           ///< function the process runs.
  std::vector<int64_t> Args;       ///< root invocation arguments.
  RecordSeq Records;
  /// Number of Prelog records in Records, maintained on emit and load:
  /// the exact interval count, so LogIndex pre-reserves precisely.
  uint32_t PrelogCount = 0;

  size_t byteSize() const;
};

} // namespace ppd

#endif // PPD_LOG_LOGRECORD_H
