//===- sema/Sema.h - PPL semantic analysis ----------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checking for PPL. Fills the resolution
/// slots in the AST (VarRefExpr::Var, CallExpr::ResolvedFunc, PStmt::SemId,
/// ...), builds the SymbolTable with storage layout, and enforces PPL's
/// rules:
///   - every name must resolve; no redeclaration within a scope,
///   - scalars are not indexed, arrays are only used indexed,
///   - call/spawn arity matches; `main` exists and takes no parameters,
///   - spawned functions take only scalar arguments,
///   - builtins (sqrt, abs, min, max) have fixed arity.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SEMA_SEMA_H
#define PPD_SEMA_SEMA_H

#include "lang/Ast.h"
#include "sema/Symbols.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppd {

class Sema {
public:
  Sema(Program &P, DiagnosticEngine &Diags);

  /// Runs all checks. Returns the symbol table, or null if errors were
  /// reported (the AST may then be partially resolved).
  std::unique_ptr<SymbolTable> run();

private:
  void declareGlobals();
  void declareSemsAndChans();
  void checkFunction(FuncDecl &F);
  void checkStmt(Stmt &S, FuncDecl &F);
  void checkExpr(Expr &E, FuncDecl &F);
  void checkLValue(const std::string &Name, Expr *Index, SourceLoc Loc,
                   VarId &OutVar, FuncDecl &F);
  void checkCallArgs(CallExpr &Call, FuncDecl &F);

  VarId declareVar(VarInfo Info);
  /// Looks up \p Name through the active local scopes, then globals.
  /// Returns InvalidId when not found.
  VarId lookupVar(const std::string &Name) const;

  void pushScope();
  void popScope();

  Program &P;
  DiagnosticEngine &Diags;
  std::unique_ptr<SymbolTable> Symbols;

  std::unordered_map<std::string, VarId> GlobalScope;
  std::vector<std::unordered_map<std::string, VarId>> LocalScopes;
  std::unordered_map<std::string, uint32_t> SemIds;
  std::unordered_map<std::string, uint32_t> ChanIds;
  FrameInfo *CurrentFrame = nullptr;
};

} // namespace ppd

#endif // PPD_SEMA_SEMA_H
