//===- sema/Accesses.h - Per-statement variable accesses --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, per statement, the variables it may read and may write — the
/// building blocks of the paper's USED/DEFINED sets (§5.1) and of the
/// program database. Conventions (documented as the paper's §7 "pointers and
/// aliases" caveat; PPL has arrays but no pointers):
///
///  * `a[i] = e` both reads and writes array `a` (a weak update: the rest of
///    the array flows through), and reads everything `i` and `e` read.
///  * `int a[n];` (a local array declaration) strongly writes `a` — the VM
///    zero-fills it.
///  * Calls contribute their argument expressions' reads only; the callee's
///    own effects are added interprocedurally by the MOD/REF analysis
///    (dataflow/ModRef.h) exactly as the paper prescribes with
///    inter-procedural analysis [2].
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SEMA_ACCESSES_H
#define PPD_SEMA_ACCESSES_H

#include "lang/Ast.h"

#include <functional>
#include <vector>

namespace ppd {

/// Direct (intra-statement, non-transitive) accesses of one statement.
struct StmtAccesses {
  std::vector<VarId> Reads;
  std::vector<VarId> Writes;
  /// Functions invoked directly by this statement (calls in expressions).
  /// Spawn targets are *not* included: a spawned body runs in another
  /// process, not within this statement's dynamic extent.
  std::vector<const FuncDecl *> Callees;
};

/// Collects the direct accesses of \p S. Does not recurse into nested
/// statements (a block/if/while contributes only its own condition reads).
/// Requires a resolved AST (sema must have run).
StmtAccesses collectStmtAccesses(const Stmt &S);

/// Collects the variables read by \p E into \p Reads and the user functions
/// it calls into \p Callees.
void collectExprReads(const Expr &E, std::vector<VarId> &Reads,
                      std::vector<const FuncDecl *> &Callees);

/// Invokes \p Fn on \p S and every statement nested within it, in pre-order
/// (lexical order).
void forEachStmt(const Stmt &S, const std::function<void(const Stmt &)> &Fn);

} // namespace ppd

#endif // PPD_SEMA_ACCESSES_H
