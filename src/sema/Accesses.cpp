//===- sema/Accesses.cpp --------------------------------------------------===//
//
// Part of PPD. See Accesses.h.
//
//===----------------------------------------------------------------------===//

#include "sema/Accesses.h"

#include <algorithm>

using namespace ppd;

/// Removes duplicates while keeping first-occurrence order.
template <typename T> static void dedupePreservingOrder(std::vector<T> &V) {
  std::vector<T> Seen;
  auto End = std::remove_if(V.begin(), V.end(), [&](const T &E) {
    if (std::find(Seen.begin(), Seen.end(), E) != Seen.end())
      return true;
    Seen.push_back(E);
    return false;
  });
  V.erase(End, V.end());
}

void ppd::collectExprReads(const Expr &E, std::vector<VarId> &Reads,
                           std::vector<const FuncDecl *> &Callees) {
  switch (E.getKind()) {
  case ExprKind::IntLit:
  case ExprKind::Input:
  case ExprKind::Recv:
    return;
  case ExprKind::VarRef: {
    const auto *V = cast<VarRefExpr>(&E);
    if (V->Var != InvalidId)
      Reads.push_back(V->Var);
    return;
  }
  case ExprKind::ArrayIndex: {
    const auto *A = cast<ArrayIndexExpr>(&E);
    if (A->Var != InvalidId)
      Reads.push_back(A->Var);
    collectExprReads(*A->Index, Reads, Callees);
    return;
  }
  case ExprKind::Unary:
    collectExprReads(*cast<UnaryExpr>(&E)->Operand, Reads, Callees);
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    collectExprReads(*B->Lhs, Reads, Callees);
    collectExprReads(*B->Rhs, Reads, Callees);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    for (const ExprPtr &Arg : C->Args)
      collectExprReads(*Arg, Reads, Callees);
    if (C->ResolvedFunc)
      Callees.push_back(C->ResolvedFunc);
    return;
  }
  }
}

void ppd::forEachStmt(const Stmt &S,
                      const std::function<void(const Stmt &)> &Fn) {
  Fn(S);
  switch (S.getKind()) {
  case StmtKind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->Body)
      forEachStmt(*Child, Fn);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    forEachStmt(*I->Then, Fn);
    if (I->Else)
      forEachStmt(*I->Else, Fn);
    return;
  }
  case StmtKind::While:
    forEachStmt(*cast<WhileStmt>(&S)->Body, Fn);
    return;
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    if (F->Init)
      forEachStmt(*F->Init, Fn);
    if (F->Step)
      forEachStmt(*F->Step, Fn);
    forEachStmt(*F->Body, Fn);
    return;
  }
  default:
    return;
  }
}

static StmtAccesses collectStmtAccessesImpl(const Stmt &S) {
  StmtAccesses Out;
  switch (S.getKind()) {
  case StmtKind::Block:
    return Out;
  case StmtKind::VarDecl: {
    const auto *D = cast<VarDeclStmt>(&S);
    if (D->Init)
      collectExprReads(*D->Init, Out.Reads, Out.Callees);
    if (D->Var != InvalidId)
      Out.Writes.push_back(D->Var);
    return Out;
  }
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    collectExprReads(*A->Value, Out.Reads, Out.Callees);
    if (A->Index) {
      collectExprReads(*A->Index, Out.Reads, Out.Callees);
      // Weak update: element store preserves the rest of the array.
      if (A->Var != InvalidId)
        Out.Reads.push_back(A->Var);
    }
    if (A->Var != InvalidId)
      Out.Writes.push_back(A->Var);
    return Out;
  }
  case StmtKind::If:
    collectExprReads(*cast<IfStmt>(&S)->Cond, Out.Reads, Out.Callees);
    return Out;
  case StmtKind::While:
    collectExprReads(*cast<WhileStmt>(&S)->Cond, Out.Reads, Out.Callees);
    return Out;
  case StmtKind::For: {
    // The For node itself owns only the condition; Init/Step are separate
    // registered statements with their own accesses.
    const auto *F = cast<ForStmt>(&S);
    if (F->Cond)
      collectExprReads(*F->Cond, Out.Reads, Out.Callees);
    return Out;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(&S);
    if (R->Value)
      collectExprReads(*R->Value, Out.Reads, Out.Callees);
    return Out;
  }
  case StmtKind::Expr:
    collectExprReads(*cast<ExprStmt>(&S)->Call, Out.Reads, Out.Callees);
    return Out;
  case StmtKind::P:
  case StmtKind::V:
    return Out;
  case StmtKind::Send:
    collectExprReads(*cast<SendStmt>(&S)->Value, Out.Reads, Out.Callees);
    return Out;
  case StmtKind::Spawn: {
    const auto *Sp = cast<SpawnStmt>(&S);
    for (const ExprPtr &Arg : Sp->Args)
      collectExprReads(*Arg, Out.Reads, Out.Callees);
    return Out;
  }
  case StmtKind::Print:
    collectExprReads(*cast<PrintStmt>(&S)->Value, Out.Reads, Out.Callees);
    return Out;
  }
  return Out;
}

StmtAccesses ppd::collectStmtAccesses(const Stmt &S) {
  StmtAccesses Out = collectStmtAccessesImpl(S);
  dedupePreservingOrder(Out.Reads);
  dedupePreservingOrder(Out.Writes);
  dedupePreservingOrder(Out.Callees);
  return Out;
}
