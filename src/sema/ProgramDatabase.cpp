//===- sema/ProgramDatabase.cpp -------------------------------------------===//
//
// Part of PPD. See ProgramDatabase.h.
//
//===----------------------------------------------------------------------===//

#include "sema/ProgramDatabase.h"

#include "sema/Accesses.h"

using namespace ppd;

ProgramDatabase::ProgramDatabase(const Program &P, const SymbolTable &Symbols)
    : Symbols(Symbols) {
  Sites.resize(Symbols.numVars());
  Owner.assign(P.numStmts(), nullptr);

  for (const auto &F : P.Funcs) {
    forEachStmt(*F->Body, [&](const Stmt &S) {
      Owner[S.Id] = F.get();
      StmtAccesses Acc = collectStmtAccesses(S);
      for (VarId V : Acc.Reads)
        Sites[V].Uses.push_back(S.Id);
      for (VarId V : Acc.Writes)
        Sites[V].Defs.push_back(S.Id);
    });
  }
}

std::vector<VarId> ProgramDatabase::lookup(const std::string &Name) const {
  std::vector<VarId> Out;
  for (const VarInfo &Info : Symbols.Vars)
    if (Info.Name == Name)
      Out.push_back(Info.Id);
  return Out;
}

std::string ProgramDatabase::dump(const Program &P) const {
  std::string Out;
  for (const VarInfo &Info : Symbols.Vars) {
    Out += Info.Name;
    switch (Info.Kind) {
    case VarKind::SharedGlobal:
      Out += " (shared global)";
      break;
    case VarKind::PrivateGlobal:
      Out += " (global)";
      break;
    case VarKind::Param:
      Out += " (param of " + Info.Func->Name + ")";
      break;
    case VarKind::Local:
      Out += " (local of " + Info.Func->Name + ")";
      break;
    }
    Out += " defs:[";
    const VarSites &S = Sites[Info.Id];
    for (size_t I = 0; I != S.Defs.size(); ++I) {
      if (I)
        Out += ",";
      Out += std::to_string(P.stmt(S.Defs[I])->getLoc().Line);
    }
    Out += "] uses:[";
    for (size_t I = 0; I != S.Uses.size(); ++I) {
      if (I)
        Out += ",";
      Out += std::to_string(P.stmt(S.Uses[I])->getLoc().Line);
    }
    Out += "]\n";
  }
  return Out;
}
