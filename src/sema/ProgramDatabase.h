//===- sema/ProgramDatabase.h - The paper's program database ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "program database" of the preparatory phase (paper §3.2.1/§4.1):
/// per-identifier information that the PPD controller consults while
/// building dynamic graphs — "the places where an identifier is defined or
/// used", plus the semantic-analysis results (the MOD/REF sets live in
/// dataflow/ModRef.h and are attached here once computed).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SEMA_PROGRAMDATABASE_H
#define PPD_SEMA_PROGRAMDATABASE_H

#include "lang/Ast.h"
#include "sema/Symbols.h"

#include <string>
#include <vector>

namespace ppd {

/// Definition/use sites of one variable.
struct VarSites {
  std::vector<StmtId> Defs; ///< statements that may write the variable.
  std::vector<StmtId> Uses; ///< statements that may read the variable.
};

class ProgramDatabase {
public:
  /// Builds the database for \p P (requires resolved AST and symbols).
  ProgramDatabase(const Program &P, const SymbolTable &Symbols);

  const VarSites &sites(VarId Var) const {
    assert(Var < Sites.size() && "variable id out of range");
    return Sites[Var];
  }

  /// All variables named \p Name (several scopes may reuse a name).
  std::vector<VarId> lookup(const std::string &Name) const;

  /// The function whose body contains \p Id, or null for no owner.
  const FuncDecl *owningFunc(StmtId Id) const {
    assert(Id < Owner.size() && "statement id out of range");
    return Owner[Id];
  }

  /// Human-readable dump, one variable per line; used by the ppd tool's
  /// `info var` command and by tests.
  std::string dump(const Program &P) const;

private:
  const SymbolTable &Symbols;
  std::vector<VarSites> Sites;        ///< indexed by VarId.
  std::vector<const FuncDecl *> Owner; ///< indexed by StmtId.
};

} // namespace ppd

#endif // PPD_SEMA_PROGRAMDATABASE_H
