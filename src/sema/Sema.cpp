//===- sema/Sema.cpp ------------------------------------------------------===//
//
// Part of PPD. See Sema.h.
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

using namespace ppd;

Sema::Sema(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

std::unique_ptr<SymbolTable> Sema::run() {
  Symbols = std::make_unique<SymbolTable>();
  Symbols->Frames.resize(P.Funcs.size());

  declareGlobals();
  declareSemsAndChans();

  for (auto &F : P.Funcs) {
    if (P.findFunc(F->Name) != F.get())
      Diags.error(F->Loc, "redefinition of function '" + F->Name + "'");
    checkFunction(*F);
  }

  FuncDecl *Main = P.findFunc("main");
  if (!Main)
    Diags.error(SourceLoc(), "program has no 'main' function");
  else if (!Main->Params.empty())
    Diags.error(Main->Loc, "'main' must take no parameters");

  if (Diags.hasErrors())
    return nullptr;
  return std::move(Symbols);
}

VarId Sema::declareVar(VarInfo Info) {
  Info.Id = VarId(Symbols->Vars.size());
  Symbols->Vars.push_back(std::move(Info));
  return Symbols->Vars.back().Id;
}

VarId Sema::lookupVar(const std::string &Name) const {
  for (auto It = LocalScopes.rbegin(), E = LocalScopes.rend(); It != E; ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  auto Found = GlobalScope.find(Name);
  if (Found != GlobalScope.end())
    return Found->second;
  return InvalidId;
}

void Sema::pushScope() { LocalScopes.emplace_back(); }
void Sema::popScope() { LocalScopes.pop_back(); }

void Sema::declareGlobals() {
  for (GlobalDecl &G : P.Globals) {
    if (GlobalScope.count(G.Name)) {
      Diags.error(G.Loc, "redeclaration of global '" + G.Name + "'");
      continue;
    }
    VarInfo Info;
    Info.Name = G.Name;
    Info.Kind = G.Shared ? VarKind::SharedGlobal : VarKind::PrivateGlobal;
    Info.ArraySize = G.ArraySize;
    Info.Init = G.Init;
    Info.Loc = G.Loc;
    if (G.Shared) {
      Info.Offset = Symbols->SharedMemorySize;
      Info.SharedIndex = Symbols->NumSharedVars++;
      Symbols->SharedMemorySize += Info.slotCount();
    } else {
      Info.Offset = Symbols->PrivateGlobalSize;
      Symbols->PrivateGlobalSize += Info.slotCount();
    }
    G.Var = declareVar(std::move(Info));
    GlobalScope[G.Name] = G.Var;
  }
}

void Sema::declareSemsAndChans() {
  for (SemDecl &S : P.Sems) {
    if (SemIds.count(S.Name) || GlobalScope.count(S.Name)) {
      Diags.error(S.Loc, "redeclaration of '" + S.Name + "'");
      continue;
    }
    S.Id = uint32_t(SemIds.size());
    SemIds[S.Name] = S.Id;
  }
  for (ChanDecl &C : P.Chans) {
    if (ChanIds.count(C.Name) || SemIds.count(C.Name) ||
        GlobalScope.count(C.Name)) {
      Diags.error(C.Loc, "redeclaration of '" + C.Name + "'");
      continue;
    }
    C.Id = uint32_t(ChanIds.size());
    ChanIds[C.Name] = C.Id;
  }
}

void Sema::checkFunction(FuncDecl &F) {
  FrameInfo &Frame = Symbols->Frames[F.Index];
  Frame.Func = &F;
  Frame.FrameSize = 0;
  CurrentFrame = &Frame;

  pushScope();
  for (Param &Par : F.Params) {
    if (LocalScopes.back().count(Par.Name)) {
      Diags.error(Par.Loc, "duplicate parameter '" + Par.Name + "'");
      continue;
    }
    VarInfo Info;
    Info.Name = Par.Name;
    Info.Kind = VarKind::Param;
    Info.Func = &F;
    Info.Loc = Par.Loc;
    Info.Offset = Frame.FrameSize;
    Frame.FrameSize += 1;
    Par.Var = declareVar(std::move(Info));
    Frame.Vars.push_back(Par.Var);
    LocalScopes.back()[Par.Name] = Par.Var;
  }
  checkStmt(*F.Body, F);
  popScope();
  CurrentFrame = nullptr;
}

void Sema::checkLValue(const std::string &Name, Expr *Index, SourceLoc Loc,
                       VarId &OutVar, FuncDecl &F) {
  VarId Id = lookupVar(Name);
  if (Id == InvalidId) {
    if (SemIds.count(Name) || ChanIds.count(Name))
      Diags.error(Loc, "'" + Name +
                           "' is a semaphore or channel, not a variable");
    else
      Diags.error(Loc, "use of undeclared variable '" + Name + "'");
    return;
  }
  const VarInfo &Info = Symbols->var(Id);
  if (Info.isArray() && !Index)
    Diags.error(Loc, "array '" + Name + "' must be indexed");
  if (!Info.isArray() && Index)
    Diags.error(Loc, "scalar '" + Name + "' cannot be indexed");
  if (Index)
    checkExpr(*Index, F);
  OutVar = Id;
}

void Sema::checkCallArgs(CallExpr &Call, FuncDecl &F) {
  for (ExprPtr &Arg : Call.Args)
    checkExpr(*Arg, F);

  // Builtins first.
  static const struct {
    const char *Name;
    Builtin Kind;
    unsigned Arity;
  } Builtins[] = {
      {"sqrt", Builtin::Sqrt, 1},
      {"abs", Builtin::Abs, 1},
      {"min", Builtin::Min, 2},
      {"max", Builtin::Max, 2},
  };
  for (const auto &B : Builtins) {
    if (Call.Callee != B.Name)
      continue;
    if (Call.Args.size() != B.Arity)
      Diags.error(Call.getLoc(), std::string("builtin '") + B.Name +
                                     "' takes " + std::to_string(B.Arity) +
                                     " argument(s)");
    Call.BuiltinKind = B.Kind;
    return;
  }

  FuncDecl *Callee = P.findFunc(Call.Callee);
  if (!Callee) {
    Diags.error(Call.getLoc(),
                "call to undeclared function '" + Call.Callee + "'");
    return;
  }
  if (Call.Args.size() != Callee->Params.size())
    Diags.error(Call.getLoc(), "function '" + Call.Callee + "' takes " +
                                   std::to_string(Callee->Params.size()) +
                                   " argument(s), got " +
                                   std::to_string(Call.Args.size()));
  Call.ResolvedFunc = Callee;
}

void Sema::checkExpr(Expr &E, FuncDecl &F) {
  switch (E.getKind()) {
  case ExprKind::IntLit:
  case ExprKind::Input:
    return;
  case ExprKind::VarRef: {
    auto *V = cast<VarRefExpr>(&E);
    VarId Id = lookupVar(V->Name);
    if (Id == InvalidId) {
      Diags.error(V->getLoc(), "use of undeclared variable '" + V->Name + "'");
      return;
    }
    if (Symbols->var(Id).isArray()) {
      Diags.error(V->getLoc(),
                  "array '" + V->Name + "' cannot be used as a scalar value");
      return;
    }
    V->Var = Id;
    return;
  }
  case ExprKind::ArrayIndex: {
    auto *A = cast<ArrayIndexExpr>(&E);
    checkLValue(A->Name, A->Index.get(), A->getLoc(), A->Var, F);
    return;
  }
  case ExprKind::Unary:
    checkExpr(*cast<UnaryExpr>(&E)->Operand, F);
    return;
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(&E);
    checkExpr(*B->Lhs, F);
    checkExpr(*B->Rhs, F);
    return;
  }
  case ExprKind::Call:
    checkCallArgs(*cast<CallExpr>(&E), F);
    return;
  case ExprKind::Recv: {
    auto *R = cast<RecvExpr>(&E);
    auto It = ChanIds.find(R->Channel);
    if (It == ChanIds.end()) {
      Diags.error(R->getLoc(),
                  "use of undeclared channel '" + R->Channel + "'");
      return;
    }
    R->Chan = It->second;
    return;
  }
  }
}

void Sema::checkStmt(Stmt &S, FuncDecl &F) {
  switch (S.getKind()) {
  case StmtKind::Block: {
    pushScope();
    for (StmtPtr &Child : cast<BlockStmt>(&S)->Body)
      checkStmt(*Child, F);
    popScope();
    return;
  }
  case StmtKind::VarDecl: {
    auto *D = cast<VarDeclStmt>(&S);
    if (D->Init)
      checkExpr(*D->Init, F);
    if (LocalScopes.back().count(D->Name)) {
      Diags.error(D->getLoc(),
                  "redeclaration of '" + D->Name + "' in the same scope");
      return;
    }
    VarInfo Info;
    Info.Name = D->Name;
    Info.Kind = VarKind::Local;
    Info.ArraySize = D->ArraySize;
    Info.Func = &F;
    Info.Loc = D->getLoc();
    Info.Offset = CurrentFrame->FrameSize;
    CurrentFrame->FrameSize += Info.slotCount();
    D->Var = declareVar(std::move(Info));
    CurrentFrame->Vars.push_back(D->Var);
    LocalScopes.back()[D->Name] = D->Var;
    return;
  }
  case StmtKind::Assign: {
    auto *A = cast<AssignStmt>(&S);
    checkExpr(*A->Value, F);
    checkLValue(A->Name, A->Index.get(), A->getLoc(), A->Var, F);
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(&S);
    checkExpr(*I->Cond, F);
    checkStmt(*I->Then, F);
    if (I->Else)
      checkStmt(*I->Else, F);
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(&S);
    checkExpr(*W->Cond, F);
    checkStmt(*W->Body, F);
    return;
  }
  case StmtKind::For: {
    auto *Fo = cast<ForStmt>(&S);
    if (Fo->Init)
      checkStmt(*Fo->Init, F);
    if (Fo->Cond)
      checkExpr(*Fo->Cond, F);
    if (Fo->Step)
      checkStmt(*Fo->Step, F);
    checkStmt(*Fo->Body, F);
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(&S);
    if (R->Value)
      checkExpr(*R->Value, F);
    return;
  }
  case StmtKind::Expr: {
    auto *E = cast<ExprStmt>(&S);
    checkExpr(*E->Call, F);
    return;
  }
  case StmtKind::P: {
    auto *Ps = cast<PStmt>(&S);
    auto It = SemIds.find(Ps->Sem);
    if (It == SemIds.end()) {
      Diags.error(Ps->getLoc(),
                  "use of undeclared semaphore '" + Ps->Sem + "'");
      return;
    }
    Ps->SemId = It->second;
    return;
  }
  case StmtKind::V: {
    auto *Vs = cast<VStmt>(&S);
    auto It = SemIds.find(Vs->Sem);
    if (It == SemIds.end()) {
      Diags.error(Vs->getLoc(),
                  "use of undeclared semaphore '" + Vs->Sem + "'");
      return;
    }
    Vs->SemId = It->second;
    return;
  }
  case StmtKind::Send: {
    auto *M = cast<SendStmt>(&S);
    checkExpr(*M->Value, F);
    auto It = ChanIds.find(M->Channel);
    if (It == ChanIds.end()) {
      Diags.error(M->getLoc(),
                  "use of undeclared channel '" + M->Channel + "'");
      return;
    }
    M->Chan = It->second;
    return;
  }
  case StmtKind::Spawn: {
    auto *Sp = cast<SpawnStmt>(&S);
    for (ExprPtr &Arg : Sp->Args)
      checkExpr(*Arg, F);
    FuncDecl *Callee = P.findFunc(Sp->Callee);
    if (!Callee) {
      Diags.error(Sp->getLoc(),
                  "spawn of undeclared function '" + Sp->Callee + "'");
      return;
    }
    if (Sp->Args.size() != Callee->Params.size())
      Diags.error(Sp->getLoc(), "function '" + Sp->Callee + "' takes " +
                                    std::to_string(Callee->Params.size()) +
                                    " argument(s), got " +
                                    std::to_string(Sp->Args.size()));
    Sp->ResolvedFunc = Callee;
    return;
  }
  case StmtKind::Print: {
    checkExpr(*cast<PrintStmt>(&S)->Value, F);
    return;
  }
  }
}
