//===- sema/CallGraph.h - Program call graph --------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph over user functions. It distinguishes ordinary calls from
/// `spawn` edges (a spawned function runs as a new process). Consumers:
///
///  * interprocedural MOD/REF analysis (bottom-up over SCCs),
///  * the e-block partitioner's *leaf inheritance* rule (§5.4: small leaf
///    subroutines don't log; their direct ancestors inherit their USED and
///    DEFINED sets and log for them),
///  * the PPD controller, to locate which functions can run as processes.
///
/// SCCs are computed with Tarjan's algorithm so recursion is handled; a
/// function is a "leaf" only if it calls no user function at all.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SEMA_CALLGRAPH_H
#define PPD_SEMA_CALLGRAPH_H

#include "lang/Ast.h"

#include <vector>

namespace ppd {

class CallGraph {
public:
  /// Builds the call graph of \p P (requires a resolved AST).
  explicit CallGraph(const Program &P);

  /// Functions directly called (not spawned) by \p F, deduplicated.
  const std::vector<const FuncDecl *> &callees(const FuncDecl &F) const {
    return Callees[F.Index];
  }

  /// Functions that directly call \p F.
  const std::vector<const FuncDecl *> &callers(const FuncDecl &F) const {
    return Callers[F.Index];
  }

  /// Functions started with `spawn` anywhere in the program.
  const std::vector<const FuncDecl *> &spawnTargets() const {
    return Spawned;
  }

  /// True if \p F calls no user function.
  bool isLeaf(const FuncDecl &F) const { return Callees[F.Index].empty(); }

  /// True if \p F can (transitively) reach itself — part of a nontrivial
  /// SCC or directly self-recursive.
  bool isRecursive(const FuncDecl &F) const { return Recursive[F.Index]; }

  /// SCC id of \p F; ids are in reverse topological order (callees first).
  unsigned sccId(const FuncDecl &F) const { return SccIds[F.Index]; }

  /// Functions in bottom-up (callees-before-callers) order.
  const std::vector<const FuncDecl *> &bottomUpOrder() const {
    return BottomUp;
  }

private:
  std::vector<std::vector<const FuncDecl *>> Callees;
  std::vector<std::vector<const FuncDecl *>> Callers;
  std::vector<const FuncDecl *> Spawned;
  std::vector<bool> Recursive;
  std::vector<unsigned> SccIds;
  std::vector<const FuncDecl *> BottomUp;
};

} // namespace ppd

#endif // PPD_SEMA_CALLGRAPH_H
