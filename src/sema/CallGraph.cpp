//===- sema/CallGraph.cpp -------------------------------------------------===//
//
// Part of PPD. See CallGraph.h.
//
//===----------------------------------------------------------------------===//

#include "sema/CallGraph.h"

#include "sema/Accesses.h"

#include <algorithm>
#include <set>

using namespace ppd;

namespace {

/// Iterative Tarjan SCC over function indices.
class TarjanScc {
public:
  TarjanScc(const std::vector<std::vector<unsigned>> &Adj)
      : SccOf(Adj.size(), 0), Adj(Adj), Index(Adj.size(), Unvisited),
        LowLink(Adj.size(), 0), OnStack(Adj.size(), false) {}

  void run() {
    for (unsigned V = 0; V != Adj.size(); ++V)
      if (Index[V] == Unvisited)
        strongConnect(V);
  }

  std::vector<unsigned> SccOf;
  unsigned NumSccs = 0;
  /// Members per SCC, filled in completion (reverse topological) order.
  std::vector<std::vector<unsigned>> Members;

private:
  static constexpr unsigned Unvisited = ~0u;

  void strongConnect(unsigned Root) {
    // Explicit stack of (node, next-edge-index) to avoid deep recursion on
    // long call chains.
    std::vector<std::pair<unsigned, size_t>> Work;
    Work.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Work.empty()) {
      auto &[V, EdgeIdx] = Work.back();
      if (EdgeIdx < Adj[V].size()) {
        unsigned W = Adj[V][EdgeIdx++];
        if (Index[W] == Unvisited) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          Work.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }
      // All edges of V handled: maybe emit an SCC, then propagate lowlink.
      if (LowLink[V] == Index[V]) {
        Members.emplace_back();
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccOf[W] = NumSccs;
          Members.back().push_back(W);
        } while (W != V);
        ++NumSccs;
      }
      Work.pop_back();
      if (!Work.empty()) {
        unsigned Parent = Work.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }

  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<unsigned> Index;
  std::vector<unsigned> LowLink;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;
};

} // namespace

CallGraph::CallGraph(const Program &P) {
  unsigned N = unsigned(P.Funcs.size());
  Callees.resize(N);
  Callers.resize(N);
  Recursive.assign(N, false);
  SccIds.assign(N, 0);

  std::set<const FuncDecl *> SpawnSet;
  std::vector<std::set<unsigned>> CalleeSets(N);
  std::vector<bool> SelfLoop(N, false);

  for (const auto &F : P.Funcs) {
    forEachStmt(*F->Body, [&](const Stmt &S) {
      StmtAccesses Acc = collectStmtAccesses(S);
      for (const FuncDecl *Callee : Acc.Callees) {
        CalleeSets[F->Index].insert(Callee->Index);
        if (Callee == F.get())
          SelfLoop[F->Index] = true;
      }
      if (const auto *Sp = dyn_cast<SpawnStmt>(&S))
        if (Sp->ResolvedFunc)
          SpawnSet.insert(Sp->ResolvedFunc);
    });
  }

  std::vector<std::vector<unsigned>> Adj(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J : CalleeSets[I]) {
      Adj[I].push_back(J);
      Callees[I].push_back(P.Funcs[J].get());
      Callers[J].push_back(P.Funcs[I].get());
    }

  Spawned.assign(SpawnSet.begin(), SpawnSet.end());
  std::sort(Spawned.begin(), Spawned.end(),
            [](const FuncDecl *A, const FuncDecl *B) {
              return A->Index < B->Index;
            });

  TarjanScc Scc(Adj);
  Scc.run();
  for (unsigned I = 0; I != N; ++I) {
    SccIds[I] = Scc.SccOf[I];
    Recursive[I] = SelfLoop[I] || Scc.Members[Scc.SccOf[I]].size() > 1;
  }

  // Tarjan emits SCCs callees-first, so concatenating member lists gives a
  // bottom-up traversal order.
  for (const std::vector<unsigned> &Scc : Scc.Members)
    for (unsigned V : Scc)
      BottomUp.push_back(P.Funcs[V].get());
}
