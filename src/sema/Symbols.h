//===- sema/Symbols.h - Resolved symbol information -------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbol table produced by semantic analysis. Every variable in the
/// program — shared globals, per-process globals, parameters, and locals —
/// receives a dense VarId; data-flow sets (USED/DEFINED, §5.1) and log
/// records are keyed by these ids. Shared variables additionally receive a
/// dense SharedIndex used by the per-synchronization-unit READ/WRITE sets of
/// race detection (§6.4), and each variable gets a storage slot for the VM.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SEMA_SYMBOLS_H
#define PPD_SEMA_SYMBOLS_H

#include "lang/Ast.h"

#include <cassert>
#include <string>
#include <vector>

namespace ppd {

enum class VarKind {
  SharedGlobal,  ///< `shared int x;` — one copy in simulated shared memory.
  PrivateGlobal, ///< `int x;` at top level — one copy per process.
  Param,         ///< function parameter.
  Local,         ///< function-local declaration.
};

/// Everything later phases need to know about one variable.
struct VarInfo {
  VarId Id = InvalidId;
  std::string Name;
  VarKind Kind = VarKind::Local;
  int64_t ArraySize = -1; ///< -1 for scalars.
  int64_t Init = 0;       ///< globals only.
  const FuncDecl *Func = nullptr; ///< owning function (Param/Local only).
  SourceLoc Loc;

  /// Storage offset: within shared memory, the private-global segment, or
  /// the owning function's frame, depending on Kind.
  uint32_t Offset = 0;
  /// Dense index among shared variables, or InvalidId.
  uint32_t SharedIndex = InvalidId;

  bool isArray() const { return ArraySize >= 0; }
  bool isShared() const { return Kind == VarKind::SharedGlobal; }
  bool isGlobal() const {
    return Kind == VarKind::SharedGlobal || Kind == VarKind::PrivateGlobal;
  }
  /// Number of VM value slots this variable occupies.
  uint32_t slotCount() const {
    return isArray() ? uint32_t(ArraySize) : 1u;
  }
};

/// Per-function storage layout computed by sema.
struct FrameInfo {
  const FuncDecl *Func = nullptr;
  /// Total frame slots (params + locals, arrays flattened).
  uint32_t FrameSize = 0;
  /// VarIds of params then locals, in declaration order.
  std::vector<VarId> Vars;
};

/// The program-wide symbol table.
class SymbolTable {
public:
  std::vector<VarInfo> Vars;        ///< indexed by VarId.
  std::vector<FrameInfo> Frames;    ///< indexed by FuncDecl::Index.
  uint32_t SharedMemorySize = 0;    ///< slots of shared memory.
  uint32_t PrivateGlobalSize = 0;   ///< slots per process for plain globals.
  uint32_t NumSharedVars = 0;       ///< dense SharedIndex universe.

  const VarInfo &var(VarId Id) const {
    assert(Id < Vars.size() && "variable id out of range");
    return Vars[Id];
  }

  VarInfo &var(VarId Id) {
    assert(Id < Vars.size() && "variable id out of range");
    return Vars[Id];
  }

  unsigned numVars() const { return unsigned(Vars.size()); }

  const FrameInfo &frame(const FuncDecl &F) const {
    assert(F.Index < Frames.size() && "function has no frame info");
    return Frames[F.Index];
  }
};

} // namespace ppd

#endif // PPD_SEMA_SYMBOLS_H
