//===- server/Protocol.h - Debug-server wire protocol -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol between debug clients and the PPD server.
///
/// Every message travels as one frame:
///
///   u32 Len | u8 Version | u8 Type | u64 RequestId | body
///
/// Len counts the payload after the length prefix (so Version is byte 4 of
/// the stream) and is capped at MaxFramePayload; a peer announcing a
/// larger frame is malformed by definition and the connection drops
/// instead of buffering unboundedly. RequestId is an opaque client cookie
/// echoed in the response so clients may pipeline requests.
///
/// Bodies are fixed-width little-endian fields plus length-prefixed byte
/// strings, encoded with LogWriter and decoded with the bounds-checked
/// ByteReader from log/LogIO.h: any truncated, oversized, or garbage body
/// latches the reader's failed state and decode reports false — never a
/// crash, never a partial struct observed by the caller.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_PROTOCOL_H
#define PPD_SERVER_PROTOCOL_H

#include "log/LogIO.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

/// Protocol revision; bumped on any wire-visible change.
inline constexpr uint8_t ProtocolVersion = 2;

/// Hard cap on one frame's payload. Debug responses are text and DOT
/// dumps; a megabyte is generous, and the cap is what lets a reader
/// reject a corrupt length prefix before allocating.
inline constexpr uint32_t MaxFramePayload = 1u << 20;

/// Client → server message types.
enum class MsgType : uint8_t {
  OpenSession = 1, ///< body: u32 program index
  Query = 2,       ///< body: u64 session, u32 len, command text
  Step = 3,        ///< body: u64 session, u8 direction (0 back, 1 fwd)
  Races = 4,       ///< body: u64 session
  Stats = 5,       ///< body: u64 session (0 = whole-server metrics)
  CloseSession = 6, ///< body: u64 session
  Shutdown = 7,    ///< body: empty
  // Streaming ingest (live attach). A tracer opens a stream with
  // StreamHello, ships consistent cuts as SectionData frames (one per
  // process with new records; the last in a cut carries LastInCut), and
  // closes with StreamEnd carrying the program output. The server grants
  // send credit via RespType::Ack; the tracer blocks at zero credit.
  StreamHello = 8, ///< body: u32 program index, u64 program hash
  SectionData = 9, ///< body: u64 stream, u64 cut, u32 pid, u8 flags,
                   ///<       u64 stalls, u32 first record, u32 len, blob
  StreamEnd = 10,  ///< body: u64 stream, u64 stalls, u32 len, output blob
  TailQuery = 11,  ///< body: u64 stream, u32 len, command text
  Frontier = 12,   ///< body: u64 stream (0 = list live streams)
};

/// SectionData flag bits.
inline constexpr uint8_t SectionLastInCut = 1u << 0;

/// Server → client message types.
enum class RespType : uint8_t {
  SessionOpened = 1, ///< body: u64 session id
  Result = 2,        ///< body: u32 len, response text
  StatsText = 3,     ///< body: u32 len, rendered metrics
  Closed = 4,        ///< body: empty
  Busy = 5,          ///< body: empty — queue full, retry later
  Error = 6,         ///< body: u32 code, u32 len, message text
  ShutdownAck = 7,   ///< body: empty
  Ack = 8,           ///< body: u64 stream id, u32 credits granted
};

/// Error codes carried by RespType::Error.
enum class ErrCode : uint32_t {
  BadFrame = 1,     ///< undecodable body or bad length
  BadVersion = 2,   ///< unsupported protocol version
  UnknownType = 3,  ///< unrecognized message type
  NoSuchProgram = 4,
  NoSuchSession = 5,
  TooManySessions = 6,
  Timeout = 7,      ///< request expired in the queue
  ShuttingDown = 8, ///< server is draining
  NoSuchStream = 9, ///< stream id unknown or already ended
  StreamProtocol = 10, ///< ingest invariant violated; stream is dead
};

/// A decoded client request. Fields not used by a given Type stay at
/// their defaults.
struct Request {
  MsgType Type = MsgType::Query;
  uint64_t RequestId = 0;
  uint32_t ProgramIndex = 0; ///< OpenSession
  uint64_t SessionId = 0;    ///< Query/Step/Races/Stats/CloseSession
  uint8_t Direction = 0;     ///< Step: 0 back, 1 fwd
  std::string Command;       ///< Query/TailQuery
  uint64_t ProgramHash = 0;  ///< StreamHello
  uint64_t StreamId = 0;     ///< SectionData/StreamEnd/TailQuery/Frontier
  uint64_t CutSeq = 0;       ///< SectionData: consistent-cut sequence
  uint32_t Pid = 0;          ///< SectionData
  uint32_t FirstRecord = 0;  ///< SectionData: index of first new record
  uint8_t Flags = 0;         ///< SectionData: SectionLastInCut etc.
  uint64_t Stalls = 0;       ///< SectionData/StreamEnd: cumulative
                             ///< tracer credit stalls
  std::vector<uint8_t> Blob; ///< SectionData records / StreamEnd output
};

/// A decoded server response.
struct Response {
  RespType Type = RespType::Error;
  uint64_t RequestId = 0;
  uint64_t SessionId = 0;            ///< SessionOpened
  ErrCode Code = ErrCode::BadFrame;  ///< Error
  std::string Text;                  ///< Result/StatsText/Error message
  uint64_t StreamId = 0;             ///< Ack
  uint32_t Credits = 0;              ///< Ack: send credit granted
};

/// Appends one complete frame (length prefix included) for \p Req.
void encodeRequest(const Request &Req, LogWriter &Out);

/// Appends one complete frame (length prefix included) for \p Resp.
void encodeResponse(const Response &Resp, LogWriter &Out);

/// Decodes a frame payload (the bytes after the length prefix) into
/// \p Out. False on any malformed input; \p Out is unspecified then.
/// On a version mismatch the RequestId is still recovered when possible
/// so the server can address its error response.
bool decodeRequest(const uint8_t *Data, size_t Size, Request &Out);

/// Decodes a response payload. False on malformed input.
bool decodeResponse(const uint8_t *Data, size_t Size, Response &Out);

/// Incremental frame accumulator for a byte stream. Feed arbitrary
/// chunks; complete payloads pop out in order. A declared length above
/// MaxFramePayload poisons the stream (malformed(); the transport should
/// drop the connection).
class FrameReader {
public:
  /// Appends \p Size stream bytes.
  void feed(const uint8_t *Data, size_t Size) {
    Buffer.insert(Buffer.end(), Data, Data + Size);
  }

  /// Extracts the next complete payload into \p Payload. False when no
  /// complete frame is buffered or the stream is poisoned.
  bool next(std::vector<uint8_t> &Payload) {
    if (Malformed || Buffer.size() - Consumed < 4)
      return false;
    uint32_t Len = 0;
    std::memcpy(&Len, Buffer.data() + Consumed, 4);
    if (Len > MaxFramePayload) {
      Malformed = true;
      return false;
    }
    if (Buffer.size() - Consumed < 4 + size_t(Len))
      return false;
    Payload.assign(Buffer.begin() + Consumed + 4,
                   Buffer.begin() + Consumed + 4 + Len);
    Consumed += 4 + size_t(Len);
    // Reclaim consumed prefix once it dominates the buffer.
    if (Consumed > 4096 && Consumed * 2 > Buffer.size()) {
      Buffer.erase(Buffer.begin(), Buffer.begin() + long(Consumed));
      Consumed = 0;
    }
    return true;
  }

  /// True once an impossible length prefix was seen.
  bool malformed() const { return Malformed; }

private:
  std::vector<uint8_t> Buffer;
  size_t Consumed = 0;
  bool Malformed = false;
};

} // namespace ppd

#endif // PPD_SERVER_PROTOCOL_H
