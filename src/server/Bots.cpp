//===- server/Bots.cpp ----------------------------------------------------===//
//
// Part of PPD. See Bots.h.
//
//===----------------------------------------------------------------------===//

#include "server/Bots.h"

#include "server/EventDispatcher.h"
#include "server/Protocol.h"
#include "server/ServerMetrics.h"
#include "server/Wire.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ppd;

namespace {

uint64_t nowMicros() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

struct Bot {
  enum class State : uint8_t {
    Idle,       ///< not started yet.
    Connecting, ///< non-blocking connect in flight.
    Opening,    ///< OpenSession sent, awaiting SessionOpened.
    Querying,   ///< a query in flight.
    Holding,    ///< script done, keeping the session live (HoldOpen).
    Closing,    ///< CloseSession sent, awaiting Closed.
    Done,
    Failed,
  };

  State St = State::Idle;
  int Fd = -1;
  FrameReader Frames;
  std::vector<uint8_t> WriteBuf;
  size_t WriteOff = 0;
  bool WantWrite = false;
  uint64_t SessionId = 0;
  uint64_t NextRequestId = 1;
  uint64_t PendingRequestId = 0;
  unsigned QueriesDone = 0;
  unsigned Retries = 0;
  uint64_t SendTimeUs = 0;
};

class BotFleet {
public:
  BotFleet(const BotFleetOptions &Options, uint64_t SharedSessionId)
      : Opts(Options), SharedSessionId(SharedSessionId) {}
  BotFleetResult run();

private:
  void tick();
  void startBot(size_t I);
  void onBotEvent(size_t I, uint32_t Events);
  void onConnected(size_t I);
  void readBot(size_t I);
  void handleResponse(size_t I, const Response &Resp);
  void sendRequest(size_t I, Request Req);
  void flushBot(size_t I);
  void sendNextQuery(size_t I);
  void paceNextQuery(size_t I);
  void finishQueries(size_t I);
  void beginClose(size_t I);
  void completeBot(size_t I);
  void failBot(size_t I, const char *Why);
  void releaseHolders();
  void checkDone();
  void dropSocket(Bot &B);

  BotFleetOptions Opts;
  uint64_t SharedSessionId = 0;
  EventDispatcher Loop;
  std::vector<Bot> Bots;
  LatencyHistogram Latency;
  BotFleetResult Result;
  size_t Started = 0;
  uint64_t CurConnected = 0;
  uint64_t FinishedQueries = 0;
  bool Releasing = false;
};

void BotFleet::dropSocket(Bot &B) {
  if (B.Fd >= 0) {
    Loop.remove(B.Fd);
    ::close(B.Fd);
    B.Fd = -1;
  }
}

void BotFleet::startBot(size_t I) {
  Bot &B = Bots[I];
  bool Tcp = isTcpEndpoint(Opts.Address);
  int Fd = ::socket(Tcp ? AF_INET : AF_UNIX,
                    SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    failBot(I, "socket");
    return;
  }
  int Rc;
  if (Tcp) {
    std::string Host;
    uint16_t Port = 0;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    if (!splitHostPort(Opts.Address.substr(4), Host, Port) ||
        ::inet_pton(AF_INET,
                    (Host.empty() || Host == "localhost") ? "127.0.0.1"
                                                          : Host.c_str(),
                    &Addr.sin_addr) != 1) {
      ::close(Fd);
      failBot(I, "address");
      return;
    }
    Addr.sin_port = htons(Port);
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } else {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.Address.size() >= sizeof(Addr.sun_path)) {
      ::close(Fd);
      failBot(I, "path");
      return;
    }
    std::memcpy(Addr.sun_path, Opts.Address.c_str(),
                Opts.Address.size() + 1);
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  }
  if (Rc < 0 && errno != EINPROGRESS) {
    // A full unix backlog surfaces as EAGAIN with no completion to wait
    // for; back off a tick and retry rather than failing the bot.
    ::close(Fd);
    if ((errno == EAGAIN || errno == ECONNREFUSED) && B.Retries++ < 50) {
      Loop.addTimer(10, [this, I] { startBot(I); });
      return;
    }
    failBot(I, "connect");
    return;
  }
  B.Fd = Fd;
  B.St = Bot::State::Connecting;
  Loop.add(Fd, Rc == 0 ? EPOLLIN : EPOLLOUT,
           [this, I](uint32_t Events) { onBotEvent(I, Events); });
  if (Rc == 0)
    onConnected(I);
}

void BotFleet::onConnected(size_t I) {
  Bot &B = Bots[I];
  ++Result.Connected;
  ++CurConnected;
  if (CurConnected > Result.PeakConcurrent)
    Result.PeakConcurrent = CurConnected;
  if (Opts.SharedSession) {
    B.SessionId = SharedSessionId;
    B.St = Bot::State::Querying;
    sendNextQuery(I);
    return;
  }
  Request Req;
  Req.Type = MsgType::OpenSession;
  Req.ProgramIndex = Opts.ProgramIndex;
  B.St = Bot::State::Opening;
  sendRequest(I, std::move(Req));
}

void BotFleet::onBotEvent(size_t I, uint32_t Events) {
  Bot &B = Bots[I];
  if (B.St == Bot::State::Connecting) {
    if (Events & (EPOLLERR | EPOLLHUP)) {
      dropSocket(B);
      if (B.Retries++ < 50) {
        Loop.addTimer(10, [this, I] { startBot(I); });
        return;
      }
      failBot(I, "connect");
      return;
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    ::getsockopt(B.Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
    if (Err != 0) {
      dropSocket(B);
      if (B.Retries++ < 50) {
        Loop.addTimer(10, [this, I] { startBot(I); });
        return;
      }
      failBot(I, "connect");
      return;
    }
    Loop.modify(B.Fd, EPOLLIN);
    onConnected(I);
    return;
  }
  if (Events & (EPOLLERR | EPOLLHUP)) {
    failBot(I, "hangup");
    return;
  }
  if (Events & EPOLLOUT)
    flushBot(I);
  if (Bots[I].Fd >= 0 && (Events & EPOLLIN))
    readBot(I);
}

void BotFleet::sendRequest(size_t I, Request Req) {
  Bot &B = Bots[I];
  Req.RequestId = B.NextRequestId++;
  B.PendingRequestId = Req.RequestId;
  LogWriter W;
  encodeRequest(Req, W); // includes the length prefix.
  B.WriteBuf.insert(B.WriteBuf.end(), W.data(), W.data() + W.size());
  B.SendTimeUs = nowMicros();
  flushBot(I);
}

void BotFleet::flushBot(size_t I) {
  Bot &B = Bots[I];
  while (B.WriteBuf.size() != B.WriteOff) {
    ssize_t N = ::send(B.Fd, B.WriteBuf.data() + B.WriteOff,
                       B.WriteBuf.size() - B.WriteOff, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!B.WantWrite) {
          B.WantWrite = true;
          Loop.modify(B.Fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      failBot(I, "send");
      return;
    }
    B.WriteOff += size_t(N);
  }
  B.WriteBuf.clear();
  B.WriteOff = 0;
  if (B.WantWrite) {
    B.WantWrite = false;
    Loop.modify(B.Fd, EPOLLIN);
  }
}

void BotFleet::readBot(size_t I) {
  uint8_t Buf[1 << 14];
  for (;;) {
    Bot &B = Bots[I];
    if (B.Fd < 0)
      return;
    ssize_t N = ::read(B.Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      failBot(I, "read");
      return;
    }
    if (N == 0) {
      failBot(I, "eof");
      return;
    }
    B.Frames.feed(Buf, size_t(N));
    std::vector<uint8_t> Payload;
    while (Bots[I].Fd >= 0 && Bots[I].Frames.next(Payload)) {
      Response Resp;
      if (!decodeResponse(Payload.data(), Payload.size(), Resp)) {
        failBot(I, "decode");
        return;
      }
      handleResponse(I, Resp);
      Payload.clear();
    }
    if (Bots[I].Fd >= 0 && Bots[I].Frames.malformed()) {
      failBot(I, "malformed");
      return;
    }
  }
}

void BotFleet::handleResponse(size_t I, const Response &Resp) {
  Bot &B = Bots[I];
  if (Resp.RequestId != B.PendingRequestId) {
    failBot(I, "request-id mismatch");
    return;
  }
  // Busy is the server's bounded queue doing its job; the protocol
  // contract is that the client retries. Back off a tick (staggered by
  // bot index so the herd doesn't re-arrive at once) and re-issue the
  // same logical request. The fleet deadline bounds total retrying.
  if (Resp.Type == RespType::Busy &&
      (B.St == Bot::State::Opening || B.St == Bot::State::Querying ||
       B.St == Bot::State::Closing)) {
    ++Result.BusyRetries;
    Bot::State St = B.St;
    Loop.addTimer(5 + (I & 15), [this, I, St] {
      Bot &B = Bots[I];
      if (B.Fd < 0 || B.St != St)
        return;
      switch (St) {
      case Bot::State::Opening: {
        Request Req;
        Req.Type = MsgType::OpenSession;
        Req.ProgramIndex = Opts.ProgramIndex;
        sendRequest(I, std::move(Req));
        return;
      }
      case Bot::State::Querying:
        sendNextQuery(I);
        return;
      case Bot::State::Closing: {
        Request Req;
        Req.Type = MsgType::CloseSession;
        Req.SessionId = B.SessionId;
        sendRequest(I, std::move(Req));
        return;
      }
      default:
        return;
      }
    });
    return;
  }
  switch (B.St) {
  case Bot::State::Opening:
    if (Resp.Type != RespType::SessionOpened) {
      failBot(I, "open rejected");
      return;
    }
    B.SessionId = Resp.SessionId;
    B.St = Bot::State::Querying;
    paceNextQuery(I);
    return;
  case Bot::State::Querying:
    if (Resp.Type != RespType::Result) {
      failBot(I, "query rejected");
      return;
    }
    Latency.record(nowMicros() - B.SendTimeUs);
    ++Result.QueriesAnswered;
    if (++B.QueriesDone >= Opts.QueriesPerBot) {
      finishQueries(I);
      return;
    }
    paceNextQuery(I);
    return;
  case Bot::State::Closing:
    if (Resp.Type != RespType::Closed) {
      failBot(I, "close rejected");
      return;
    }
    completeBot(I);
    return;
  default:
    failBot(I, "unexpected response");
    return;
  }
}

/// With ThinkMs the fleet is a pacer, not a firehose: the next query is
/// delayed by a deterministic per-(bot, query) jitter uniform in
/// [1, 2*ThinkMs] — mean ThinkMs, and no two bots phase-lock — so the
/// offered load is NumBots/ThinkMs queries per ms and the measured
/// round-trip is service + dispatch, not open-throttle queue depth.
void BotFleet::paceNextQuery(size_t I) {
  if (Opts.ThinkMs == 0) {
    sendNextQuery(I);
    return;
  }
  Bot &B = Bots[I];
  uint64_t Jitter =
      (I * 2654435761u + uint64_t(B.QueriesDone) * 40503u) %
          (2 * uint64_t(Opts.ThinkMs)) +
      1;
  Loop.addTimer(Jitter, [this, I] {
    Bot &B = Bots[I];
    if (B.Fd < 0 || B.St != Bot::State::Querying)
      return;
    sendNextQuery(I);
  });
}

void BotFleet::sendNextQuery(size_t I) {
  Request Req;
  Req.Type = MsgType::Query;
  Req.SessionId = Bots[I].SessionId;
  Req.Command = Opts.Command;
  sendRequest(I, std::move(Req));
}

void BotFleet::finishQueries(size_t I) {
  ++FinishedQueries;
  if (Opts.Progress && FinishedQueries % 1024 == 0)
    Opts.Progress(std::to_string(FinishedQueries) + "/" +
                  std::to_string(Opts.NumBots) + " bots finished, " +
                  std::to_string(CurConnected) + " concurrent");
  if (!Opts.HoldOpen) {
    beginClose(I);
    checkDone();
    return;
  }
  Bots[I].St = Bot::State::Holding;
  // Everyone still alive is done querying: the concurrency plateau has
  // been held, release the fleet.
  if (FinishedQueries + Result.Failed == Opts.NumBots)
    releaseHolders();
}

void BotFleet::releaseHolders() {
  if (Releasing)
    return;
  Releasing = true;
  for (size_t I = 0; I != Bots.size(); ++I)
    if (Bots[I].St == Bot::State::Holding)
      beginClose(I);
  checkDone();
}

void BotFleet::beginClose(size_t I) {
  Bot &B = Bots[I];
  if (Opts.SharedSession) {
    // The fleet runner owns the shared session; bots just hang up.
    completeBot(I);
    return;
  }
  Request Req;
  Req.Type = MsgType::CloseSession;
  Req.SessionId = B.SessionId;
  B.St = Bot::State::Closing;
  sendRequest(I, std::move(Req));
}

void BotFleet::completeBot(size_t I) {
  Bot &B = Bots[I];
  dropSocket(B);
  B.St = Bot::State::Done;
  ++Result.Completed;
  --CurConnected;
  checkDone();
}

void BotFleet::failBot(size_t I, const char *Why) {
  Bot &B = Bots[I];
  bool WasConnected = B.Fd >= 0 && B.St != Bot::State::Connecting;
  bool CountedFinished = B.St == Bot::State::Holding ||
                         B.St == Bot::State::Closing;
  dropSocket(B);
  B.St = Bot::State::Failed;
  ++Result.Failed;
  if (WasConnected)
    --CurConnected;
  if (Result.Error.empty())
    Result.Error = Why;
  // A bot that dies mid-script can be the last thing the holders were
  // waiting for.
  if (Opts.HoldOpen && !CountedFinished &&
      FinishedQueries + Result.Failed == Opts.NumBots)
    releaseHolders();
  checkDone();
}

void BotFleet::checkDone() {
  if (Result.Completed + Result.Failed >= Opts.NumBots)
    Loop.stop();
}

void BotFleet::tick() {
  size_t Batch = 0;
  while (Started != Bots.size() && Batch++ != Opts.ConnectBatch)
    startBot(Started++);
  if (Started != Bots.size())
    Loop.addTimer(10, [this] { tick(); });
}

BotFleetResult BotFleet::run() {
  if (!Loop.valid()) {
    Result.Error = "dispatcher";
    return Result;
  }
  if (Opts.NumBots == 0 || Opts.QueriesPerBot == 0) {
    Result.Error = "empty fleet";
    return Result;
  }
  raiseFdLimit();
  Bots.resize(Opts.NumBots);
  uint64_t StartUs = nowMicros();
  Loop.addTimer(Opts.DeadlineMs, [this] {
    Result.TimedOut = true;
    Loop.stop();
  });
  tick();
  Loop.run();
  for (Bot &B : Bots)
    dropSocket(B);
  Result.WallMs = (nowMicros() - StartUs) / 1000;
  Result.P50us = Latency.percentileMicros(50);
  Result.P99us = Latency.percentileMicros(99);
  Result.MeanUs = Latency.meanMicros();
  return Result;
}

} // namespace

BotFleetResult ppd::runBotFleet(const BotFleetOptions &Options) {
  const BotFleetOptions &Opts = Options;
  uint64_t SharedId = 0;
  ClientConnection Shared;
  if (Opts.SharedSession) {
    if (!Shared.connect(Opts.Address)) {
      BotFleetResult R;
      R.Error = "shared-session connect";
      return R;
    }
    Request Req;
    Req.Type = MsgType::OpenSession;
    Req.ProgramIndex = Opts.ProgramIndex;
    Response Resp;
    if (!Shared.roundTrip(Req, Resp) ||
        Resp.Type != RespType::SessionOpened) {
      BotFleetResult R;
      R.Error = "shared-session open";
      return R;
    }
    SharedId = Resp.SessionId;
  }
  BotFleet Fleet(Opts, SharedId);
  BotFleetResult Result = Fleet.run();
  if (Opts.SharedSession && Shared.connected()) {
    Request Req;
    Req.Type = MsgType::CloseSession;
    Req.SessionId = SharedId;
    Response Resp;
    Shared.roundTrip(Req, Resp);
  }
  return Result;
}
