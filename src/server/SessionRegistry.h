//===- server/SessionRegistry.h - Multi-session ownership -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the server's debugging sessions. Each registered program carries
/// a compiled artifact, a template execution log, and one shared
/// ReplayCache + single-flight table; every session opened against it
/// copies the template log into its own Controller/DebugSession but
/// replays through the shared cache, so concurrent sessions over the same
/// execution deduplicate e-block regeneration across sessions — the
/// expensive half of a flowback query — while their dynamic graphs stay
/// private.
///
/// Concurrency model: the registry map is guarded by one mutex taken only
/// for open/lookup/close/evict; each session has its own mutex serializing
/// its (stateful) command stream. Independent sessions therefore run in
/// parallel on the scheduler's pool, while two clients sharing a session
/// id see a consistent interleaving of whole commands. Handles pin a
/// session: close marks it and eviction skips pinned sessions, so a
/// request already executing can never have the session destroyed under
/// it.
///
/// Idle eviction is tick-based, not wall-clock: every acquire stamps the
/// session with the current registry tick, and evictIdle(N) drops
/// sessions untouched for N ticks. Deterministic, hence testable.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_SESSIONREGISTRY_H
#define PPD_SERVER_SESSIONREGISTRY_H

#include "core/Controller.h"
#include "core/DebugSession.h"
#include "log/BufferPool.h"
#include "log/PageStore.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppd {

struct SessionRegistryOptions {
  /// Open-session cap across all programs (0 = unlimited).
  unsigned MaxSessions = 64;
  /// Per-program shared replay-cache budget.
  size_t CacheBytes = size_t(64) << 20;
  unsigned CacheShards = 8;
  /// Replay workers shared by all sessions (0 = replay inline on the
  /// request thread, deterministic per request).
  unsigned ReplayThreads = 0;
  /// Replay tier every session runs with.
  ReplayEngineKind Engine = ReplayEngineKind::Jit;
  /// Byte budget of the buffer pool shared by every paged program whose
  /// PagedLog arrives without a pool of its own.
  size_t PoolBudget = size_t(256) << 20;
};

class SessionRegistry {
public:
  /// One live debugging session. Command execution must hold Mutex.
  struct Session {
    uint64_t Id = 0;
    uint32_t ProgramIndex = 0;
    std::unique_ptr<PpdController> Controller;
    std::unique_ptr<DebugSession> Debug;
    std::mutex Mutex;
    /// Requests currently holding a handle; eviction requires 0.
    std::atomic<uint32_t> Pins{0};
    uint64_t LastUsedTick = 0;
    bool Closed = false;
  };

  /// Pins a session for the duration of one request.
  class Handle {
  public:
    Handle() = default;
    explicit Handle(std::shared_ptr<Session> S) : Ptr(std::move(S)) {
      if (Ptr)
        Ptr->Pins.fetch_add(1, std::memory_order_relaxed);
    }
    Handle(Handle &&Other) noexcept : Ptr(std::move(Other.Ptr)) {}
    Handle &operator=(Handle &&Other) noexcept {
      if (this != &Other) {
        release();
        Ptr = std::move(Other.Ptr);
      }
      return *this;
    }
    Handle(const Handle &) = delete;
    Handle &operator=(const Handle &) = delete;
    ~Handle() { release(); }

    explicit operator bool() const { return Ptr != nullptr; }
    Session *operator->() const { return Ptr.get(); }
    Session &operator*() const { return *Ptr; }

  private:
    void release() {
      if (Ptr) {
        Ptr->Pins.fetch_sub(1, std::memory_order_relaxed);
        Ptr.reset();
      }
    }
    std::shared_ptr<Session> Ptr;
  };

  explicit SessionRegistry(SessionRegistryOptions Options = {});
  ~SessionRegistry();

  /// Registers a program + template log; returns its index. The log is
  /// indexed once here; sessions only pay for the copy.
  uint32_t addProgram(std::unique_ptr<CompiledProgram> Prog,
                      ExecutionLog Log);

  /// Paged variant: the template log is the store's facade (headers +
  /// output, no record bodies); sessions fault sections in through the
  /// pool. When \p Paged carries no pool, the registry's shared pool
  /// (created on demand with Options.PoolBudget) is used. \p Index may be
  /// a pre-built sidecar index; null skims one from the store here, once.
  /// \p Graph, when set, is the sidecar's parallel dynamic graph, adopted
  /// by every session instead of each faulting all sections to build one.
  uint32_t
  addProgram(std::unique_ptr<CompiledProgram> Prog, PagedLog Paged,
             std::shared_ptr<const LogIndex> Index = nullptr,
             std::shared_ptr<const ParallelDynamicGraph> Graph = nullptr);

  size_t numPrograms() const;

  /// The compiled program registered at \p Index, or null when out of
  /// range. The pointee's address is stable for the registry's lifetime
  /// (entries are never removed); the streaming ingest layer resolves a
  /// StreamHello's target program through this.
  const CompiledProgram *program(uint32_t Index) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Index < Programs.size() ? Programs[Index].Prog.get() : nullptr;
  }

  /// Opens a session against program \p ProgramIndex. Returns 0 when the
  /// index is bad or MaxSessions is reached (ids start at 1).
  uint64_t open(uint32_t ProgramIndex);

  /// Pins and returns session \p Id; an empty handle if unknown/closed.
  /// Stamps the session with a fresh use tick.
  Handle acquire(uint64_t Id);

  /// Marks \p Id closed and unlinks it from the map; in-flight handles
  /// keep the object alive until they drop. False if unknown.
  bool close(uint64_t Id);

  /// Drops every unpinned session idle for at least \p IdleTicks ticks
  /// (tick = one acquire/open anywhere). Returns how many were evicted.
  unsigned evictIdle(uint64_t IdleTicks);

  size_t numSessions() const;

  /// Aggregated replay-service stats across all live sessions plus each
  /// program's shared cache — the replay half of the server metrics
  /// report.
  ReplayServiceStats aggregateReplayStats() const;

private:
  struct ProgramEntry {
    std::unique_ptr<CompiledProgram> Prog;
    ExecutionLog TemplateLog;
    /// Falsy for whole-load programs; when set, TemplateLog is the facade.
    PagedLog Paged;
    /// Shared per-program index for paged programs (sessions reference it
    /// instead of re-skimming per open).
    std::shared_ptr<const LogIndex> PagedIndex;
    /// Sidecar parallel dynamic graph for paged programs; null when the
    /// program was registered without one (sessions build lazily).
    std::shared_ptr<const ParallelDynamicGraph> PagedGraph;
    std::shared_ptr<ReplayCache<ReplayResult>> Cache;
    std::shared_ptr<ReplayFlightTable> Flights;
    /// One JIT state per program: compiled code and hotness aggregate
    /// across every session (null when the backend is unavailable).
    std::shared_ptr<JitProgram> Jit;
  };

  SessionRegistryOptions Options;
  /// Section buffer pool shared by paged programs that did not bring
  /// their own; created on first paged addProgram.
  std::shared_ptr<BufferPool> SectionPool;
  /// Replay pool shared by every session's replay service; null when
  /// Options.ReplayThreads == 0. Only replay tasks run here — request
  /// tasks live on the scheduler's pool — so a help-draining request
  /// thread can never pick up work that takes session mutexes.
  std::unique_ptr<ThreadPool> ReplayPool;

  mutable std::mutex Mutex;
  std::vector<ProgramEntry> Programs;
  std::map<uint64_t, std::shared_ptr<Session>> Sessions;
  uint64_t NextId = 1;
  uint64_t Tick = 0;
};

} // namespace ppd

#endif // PPD_SERVER_SESSIONREGISTRY_H
