//===- server/SessionRegistry.cpp -----------------------------------------===//
//
// Part of PPD. See SessionRegistry.h.
//
//===----------------------------------------------------------------------===//

#include "server/SessionRegistry.h"

#include "vm/Jit.h"

using namespace ppd;

SessionRegistry::SessionRegistry(SessionRegistryOptions Options)
    : Options(Options) {
  if (this->Options.ReplayThreads > 0)
    ReplayPool = std::make_unique<ThreadPool>(this->Options.ReplayThreads);
}

SessionRegistry::~SessionRegistry() = default;

uint32_t SessionRegistry::addProgram(std::unique_ptr<CompiledProgram> Prog,
                                     ExecutionLog Log) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ProgramEntry Entry;
  Entry.Prog = std::move(Prog);
  Entry.TemplateLog = std::move(Log);
  Entry.Cache = std::make_shared<ReplayCache<ReplayResult>>(
      Options.CacheBytes, Options.CacheShards);
  Entry.Flights = std::make_shared<ReplayFlightTable>();
  Entry.Jit = JitProgram::create(*Entry.Prog);
  Programs.push_back(std::move(Entry));
  return uint32_t(Programs.size() - 1);
}

uint32_t SessionRegistry::addProgram(
    std::unique_ptr<CompiledProgram> Prog, PagedLog Paged,
    std::shared_ptr<const LogIndex> Index,
    std::shared_ptr<const ParallelDynamicGraph> Graph) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Paged.Pool) {
    if (!SectionPool)
      SectionPool = std::make_shared<BufferPool>(Options.PoolBudget);
    Paged.Pool = SectionPool;
  }
  ProgramEntry Entry;
  Entry.Prog = std::move(Prog);
  Entry.TemplateLog = Paged.Store->facadeLog();
  Entry.PagedIndex =
      Index ? std::move(Index)
            : std::make_shared<const LogIndex>(*Paged.Store);
  Entry.PagedGraph = std::move(Graph);
  Entry.Paged = std::move(Paged);
  Entry.Cache = std::make_shared<ReplayCache<ReplayResult>>(
      Options.CacheBytes, Options.CacheShards);
  Entry.Flights = std::make_shared<ReplayFlightTable>();
  Entry.Jit = JitProgram::create(*Entry.Prog);
  Programs.push_back(std::move(Entry));
  return uint32_t(Programs.size() - 1);
}

size_t SessionRegistry::numPrograms() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Programs.size();
}

uint64_t SessionRegistry::open(uint32_t ProgramIndex) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ProgramIndex >= Programs.size())
    return 0;
  if (Options.MaxSessions != 0 && Sessions.size() >= Options.MaxSessions)
    return 0;
  ProgramEntry &Entry = Programs[ProgramIndex];

  PpdControllerOptions COpts;
  COpts.Service.SharedCache = Entry.Cache;
  COpts.Service.SharedFlights = Entry.Flights;
  COpts.Service.SharedPool = ReplayPool.get();
  COpts.Service.Engine = Options.Engine;
  COpts.Service.SharedJit = Entry.Jit;

  auto S = std::make_shared<Session>();
  S->Id = NextId++;
  S->ProgramIndex = ProgramIndex;
  // Each session owns a copy of the template log: controllers mutate
  // nothing in it, but owning the copy keeps session lifetime independent
  // of registry growth (Programs may reallocate its vector). Paged
  // programs copy only the facade — record bodies fault in through the
  // shared pool and are never duplicated per session.
  if (Entry.Paged) {
    COpts.AdoptedGraph = Entry.PagedGraph;
    S->Controller = std::make_unique<PpdController>(
        *Entry.Prog, Entry.Paged, Entry.PagedIndex, COpts);
  } else
    S->Controller = std::make_unique<PpdController>(
        *Entry.Prog, Entry.TemplateLog, COpts);
  S->Debug = std::make_unique<DebugSession>(*Entry.Prog, *S->Controller);
  S->LastUsedTick = ++Tick;
  Sessions.emplace(S->Id, S);
  return S->Id;
}

SessionRegistry::Handle SessionRegistry::acquire(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || It->second->Closed)
    return Handle();
  It->second->LastUsedTick = ++Tick;
  return Handle(It->second);
}

bool SessionRegistry::close(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || It->second->Closed)
    return false;
  It->second->Closed = true;
  Sessions.erase(It);
  return true;
}

unsigned SessionRegistry::evictIdle(uint64_t IdleTicks) {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned Evicted = 0;
  for (auto It = Sessions.begin(); It != Sessions.end();) {
    Session &S = *It->second;
    bool Idle = Tick >= S.LastUsedTick && Tick - S.LastUsedTick >= IdleTicks;
    if (Idle && S.Pins.load(std::memory_order_relaxed) == 0) {
      It = Sessions.erase(It);
      ++Evicted;
    } else {
      ++It;
    }
  }
  return Evicted;
}

size_t SessionRegistry::numSessions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sessions.size();
}

ReplayServiceStats SessionRegistry::aggregateReplayStats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  ReplayServiceStats Out;
  // The shared caches know hits/misses across all sessions — including
  // already-evicted ones — so cache numbers come from the program
  // entries, engine counters from the live sessions.
  for (const ProgramEntry &Entry : Programs) {
    ReplayCacheStats C = Entry.Cache->stats();
    Out.Cache.Hits += C.Hits;
    Out.Cache.Misses += C.Misses;
    Out.Cache.Insertions += C.Insertions;
    Out.Cache.Evictions += C.Evictions;
    Out.Cache.Bytes += C.Bytes;
    Out.Cache.Entries += C.Entries;
  }
  for (const auto &KV : Sessions) {
    ReplayServiceStats S =
        KV.second->Controller->replayService().stats();
    Out.EngineReplays += S.EngineReplays;
    Out.EngineInstructions += S.EngineInstructions;
    Out.PrefetchesIssued += S.PrefetchesIssued;
  }
  // JIT counters live on the per-program shared JitProgram (sessions all
  // point at the same one), so summing program entries — not sessions —
  // avoids double counting and survives session eviction.
  for (const ProgramEntry &Entry : Programs) {
    if (!Entry.Jit)
      continue;
    JitStats JS = Entry.Jit->stats();
    Out.JitCompiles += JS.Compiles;
    Out.JitCompileNs += JS.CompileNs;
    Out.JitExecNs += JS.ExecNs;
    Out.JitBailouts += JS.Bailouts;
    Out.JitReplays += JS.JittedReplays;
  }
  if (ReplayPool)
    Out.Pool = ReplayPool->stats();
  // Buffer-pool stats: programs may share one pool (the registry's) or
  // bring their own, so sum each distinct pool exactly once.
  std::vector<const BufferPool *> Seen;
  auto AddPool = [&](const std::shared_ptr<BufferPool> &P) {
    if (!P)
      return;
    for (const BufferPool *Q : Seen)
      if (Q == P.get())
        return;
    Seen.push_back(P.get());
    BufferPoolStats B = P->stats();
    Out.Buffer.Hits += B.Hits;
    Out.Buffer.Misses += B.Misses;
    Out.Buffer.Evictions += B.Evictions;
    Out.Buffer.Insertions += B.Insertions;
    Out.Buffer.BytesResident += B.BytesResident;
    Out.Buffer.BytesPinned += B.BytesPinned;
    Out.Buffer.Entries += B.Entries;
    Out.Buffer.PeakBytes += B.PeakBytes;
    Out.Buffer.Budget += B.Budget;
    Out.HasBuffer = true;
  };
  AddPool(SectionPool);
  for (const ProgramEntry &Entry : Programs)
    AddPool(Entry.Paged.Pool);
  return Out;
}
