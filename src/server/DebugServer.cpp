//===- server/DebugServer.cpp ---------------------------------------------===//
//
// Part of PPD. See DebugServer.h.
//
//===----------------------------------------------------------------------===//

#include "server/DebugServer.h"

#include <chrono>

using namespace ppd;

DebugServer::DebugServer(DebugServerOptions Options)
    : Options(Options),
      Registry(std::make_unique<SessionRegistry>(Options.Registry)) {
  RequestSchedulerOptions SOpts;
  SOpts.Threads = Options.Threads;
  SOpts.QueueLimit = Options.QueueLimit;
  SOpts.TimeoutMs = Options.TimeoutMs;
  Scheduler = std::make_unique<RequestScheduler>(SOpts);
}

DebugServer::~DebugServer() { drain(); }

uint32_t DebugServer::addProgram(std::unique_ptr<CompiledProgram> Prog,
                                 ExecutionLog Log) {
  return Registry->addProgram(std::move(Prog), std::move(Log));
}

uint32_t DebugServer::addProgram(
    std::unique_ptr<CompiledProgram> Prog, PagedLog Paged,
    std::shared_ptr<const LogIndex> Index,
    std::shared_ptr<const ParallelDynamicGraph> Graph) {
  return Registry->addProgram(std::move(Prog), std::move(Paged),
                              std::move(Index), std::move(Graph));
}

void DebugServer::drain() { Scheduler->drain(); }

bool DebugServer::shuttingDown() const {
  std::lock_guard<std::mutex> Lock(ShutdownMutex);
  return ShutdownRequested;
}

void DebugServer::onShutdown(std::function<void()> Hook) {
  std::lock_guard<std::mutex> Lock(ShutdownMutex);
  ShutdownHook = std::move(Hook);
}

Response DebugServer::dispatch(const Request &Req) {
  Response Resp;
  Resp.RequestId = Req.RequestId;

  auto Fail = [&](ErrCode Code, std::string Msg) {
    Resp.Type = RespType::Error;
    Resp.Code = Code;
    Resp.Text = std::move(Msg);
    Metrics.countError();
    return Resp;
  };

  switch (Req.Type) {
  case MsgType::OpenSession: {
    if (Options.IdleEvictTicks != 0)
      Registry->evictIdle(Options.IdleEvictTicks);
    if (Req.ProgramIndex >= Registry->numPrograms())
      return Fail(ErrCode::NoSuchProgram,
                  "no program " + std::to_string(Req.ProgramIndex));
    uint64_t Id = Registry->open(Req.ProgramIndex);
    if (Id == 0)
      return Fail(ErrCode::TooManySessions, "session limit reached");
    Resp.Type = RespType::SessionOpened;
    Resp.SessionId = Id;
    return Resp;
  }

  case MsgType::Query:
  case MsgType::Step:
  case MsgType::Races: {
    SessionRegistry::Handle S = Registry->acquire(Req.SessionId);
    if (!S)
      return Fail(ErrCode::NoSuchSession,
                  "no session " + std::to_string(Req.SessionId));
    std::string Cmd;
    if (Req.Type == MsgType::Query)
      Cmd = Req.Command;
    else if (Req.Type == MsgType::Step)
      Cmd = Req.Direction == 0 ? "back" : "fwd";
    else
      Cmd = "races";
    std::string Text;
    {
      // One command at a time per session: DebugSession is stateful
      // (focused node), so whole commands are the interleaving unit.
      std::lock_guard<std::mutex> Lock(S->Mutex);
      Text = S->Debug->execute(Cmd);
    }
    Resp.Type = RespType::Result;
    Resp.Text = std::move(Text);
    return Resp;
  }

  case MsgType::Stats: {
    if (Req.SessionId == 0) {
      Resp.Type = RespType::StatsText;
      Resp.Text = metricsReport();
      return Resp;
    }
    SessionRegistry::Handle S = Registry->acquire(Req.SessionId);
    if (!S)
      return Fail(ErrCode::NoSuchSession,
                  "no session " + std::to_string(Req.SessionId));
    std::string Text;
    {
      std::lock_guard<std::mutex> Lock(S->Mutex);
      Text = S->Debug->execute("stats");
    }
    Resp.Type = RespType::StatsText;
    Resp.Text = std::move(Text);
    return Resp;
  }

  case MsgType::CloseSession:
    if (!Registry->close(Req.SessionId))
      return Fail(ErrCode::NoSuchSession,
                  "no session " + std::to_string(Req.SessionId));
    Resp.Type = RespType::Closed;
    return Resp;

  case MsgType::StreamHello:
  case MsgType::SectionData:
  case MsgType::StreamEnd:
  case MsgType::TailQuery:
  case MsgType::Frontier: {
    if (!StreamDispatcher)
      return Fail(ErrCode::NoSuchStream, "streaming ingest not enabled");
    Response StreamResp = StreamDispatcher(Req);
    StreamResp.RequestId = Req.RequestId;
    if (StreamResp.Type == RespType::Error)
      Metrics.countError();
    return StreamResp;
  }

  case MsgType::Shutdown: {
    std::function<void()> Hook;
    {
      std::lock_guard<std::mutex> Lock(ShutdownMutex);
      if (!ShutdownRequested) {
        ShutdownRequested = true;
        Hook = std::move(ShutdownHook);
      }
    }
    if (Hook)
      Hook();
    Resp.Type = RespType::ShutdownAck;
    return Resp;
  }
  }
  return Fail(ErrCode::UnknownType, "unhandled message type");
}

Response DebugServer::handle(const Request &Req) {
  Metrics.countRequest(Req.Type);
  auto Start = std::chrono::steady_clock::now();
  Response Resp = dispatch(Req);
  Metrics.recordLatency(uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count()));
  return Resp;
}

std::vector<uint8_t> DebugServer::encodeFrameBytes(const Response &Resp) {
  LogWriter W;
  encodeResponse(Resp, W);
  return std::vector<uint8_t>(W.data(), W.data() + W.size());
}

std::vector<uint8_t> DebugServer::handleFrame(const uint8_t *Data,
                                              size_t Size) {
  Request Req;
  if (!decodeRequest(Data, Size, Req)) {
    Metrics.countMalformed();
    Response Resp;
    Resp.Type = RespType::Error;
    // Best-effort RequestId recovery so pipelining clients can correlate:
    // the id field sits at a fixed offset when at least the header made
    // it through.
    if (Size >= 10) {
      ByteReader R(Data, Size);
      R.u8();
      R.u8();
      Resp.RequestId = R.u64();
    }
    Resp.Code = ErrCode::BadFrame;
    Resp.Text = "malformed frame";
    Metrics.countError();
    return encodeFrameBytes(Resp);
  }
  return encodeFrameBytes(handle(Req));
}

void DebugServer::submitFrame(
    std::vector<uint8_t> Payload,
    std::function<void(std::vector<uint8_t>)> Done) {
  // Decode up front: malformed input must be answered (and counted)
  // without consuming queue space, and decoding is cheap next to replay.
  Request Req;
  if (!decodeRequest(Payload.data(), Payload.size(), Req)) {
    Done(handleFrame(Payload.data(), Payload.size()));
    return;
  }

  // Stream ingest frames are order-sensitive (a cut's SectionData frames
  // must apply in ship order) and their per-connection TCP ordering is
  // exactly what the reader thread sees: handle them inline instead of
  // letting the scheduler's pool race them. Tail queries have no ordering
  // contract and go through the queue like any debug request.
  if (Req.Type == MsgType::StreamHello || Req.Type == MsgType::SectionData ||
      Req.Type == MsgType::StreamEnd) {
    Done(encodeFrameBytes(handle(Req)));
    return;
  }

  // Shared holder: the completion callback is needed both inside the
  // admitted task and on the rejection path after submit() declined it.
  auto DoneFn =
      std::make_shared<std::function<void(std::vector<uint8_t>)>>(
          std::move(Done));

  uint64_t RequestId = Req.RequestId;
  Metrics.noteQueueDepth(Scheduler->inFlight() + 1);
  RequestScheduler::Admission Verdict = Scheduler->submit(
      [this, Req = std::move(Req), DoneFn](bool TimedOut) {
        if (TimedOut) {
          Metrics.countRequest(Req.Type);
          Metrics.countTimeout();
          Response Resp;
          Resp.Type = RespType::Error;
          Resp.RequestId = Req.RequestId;
          Resp.Code = ErrCode::Timeout;
          Resp.Text = "request expired in queue";
          Metrics.countError();
          (*DoneFn)(encodeFrameBytes(Resp));
          return;
        }
        (*DoneFn)(encodeFrameBytes(handle(Req)));
      });

  if (Verdict == RequestScheduler::Admission::Accepted)
    return;
  Response Resp;
  Resp.RequestId = RequestId;
  if (Verdict == RequestScheduler::Admission::Busy) {
    Metrics.countBusy();
    Resp.Type = RespType::Busy;
  } else {
    Resp.Type = RespType::Error;
    Resp.Code = ErrCode::ShuttingDown;
    Resp.Text = "server is shutting down";
    Metrics.countError();
  }
  (*DoneFn)(encodeFrameBytes(Resp));
}

std::string DebugServer::metricsReport() const {
  return Metrics.render(
      renderReplayServiceStats(Registry->aggregateReplayStats()));
}
