//===- server/Protocol.cpp ------------------------------------------------===//
//
// Part of PPD. See Protocol.h.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

using namespace ppd;

namespace {

/// Emits `u32 Len | payload` where \p Body writes the payload after the
/// common header.
template <typename BodyFn>
void encodeFrame(uint8_t Type, uint64_t RequestId, LogWriter &Out,
                 BodyFn Body) {
  LogWriter Payload;
  Payload.u8(ProtocolVersion);
  Payload.u8(Type);
  Payload.u64(RequestId);
  Body(Payload);
  Out.u32(uint32_t(Payload.size()));
  Out.bytes(Payload);
}

void string32(LogWriter &Out, const std::string &S) {
  Out.u32(uint32_t(S.size()));
  for (char C : S)
    Out.u8(uint8_t(C));
}

/// Reads a u32-length-prefixed string; fails the reader on a length that
/// cannot fit in the remaining payload.
bool readString32(ByteReader &R, std::string &Out) {
  uint32_t Len = R.u32();
  if (!R.ok() || Len > R.remaining())
    return false;
  Out.clear();
  Out.reserve(Len);
  for (uint32_t I = 0; I != Len; ++I)
    Out.push_back(char(R.u8()));
  return R.ok();
}

void blob32(LogWriter &Out, const std::vector<uint8_t> &B) {
  Out.u32(uint32_t(B.size()));
  for (uint8_t C : B)
    Out.u8(C);
}

/// Reads a u32-length-prefixed byte blob with the same bounds discipline
/// as readString32.
bool readBlob32(ByteReader &R, std::vector<uint8_t> &Out) {
  uint32_t Len = R.u32();
  if (!R.ok() || Len > R.remaining())
    return false;
  Out.clear();
  Out.reserve(Len);
  for (uint32_t I = 0; I != Len; ++I)
    Out.push_back(R.u8());
  return R.ok();
}

} // namespace

void ppd::encodeRequest(const Request &Req, LogWriter &Out) {
  encodeFrame(uint8_t(Req.Type), Req.RequestId, Out, [&](LogWriter &P) {
    switch (Req.Type) {
    case MsgType::OpenSession:
      P.u32(Req.ProgramIndex);
      break;
    case MsgType::Query:
      P.u64(Req.SessionId);
      string32(P, Req.Command);
      break;
    case MsgType::Step:
      P.u64(Req.SessionId);
      P.u8(Req.Direction);
      break;
    case MsgType::Races:
    case MsgType::Stats:
    case MsgType::CloseSession:
      P.u64(Req.SessionId);
      break;
    case MsgType::Shutdown:
      break;
    case MsgType::StreamHello:
      P.u32(Req.ProgramIndex);
      P.u64(Req.ProgramHash);
      break;
    case MsgType::SectionData:
      P.u64(Req.StreamId);
      P.u64(Req.CutSeq);
      P.u32(Req.Pid);
      P.u8(Req.Flags);
      P.u64(Req.Stalls);
      P.u32(Req.FirstRecord);
      blob32(P, Req.Blob);
      break;
    case MsgType::StreamEnd:
      P.u64(Req.StreamId);
      P.u64(Req.Stalls);
      blob32(P, Req.Blob);
      break;
    case MsgType::TailQuery:
      P.u64(Req.StreamId);
      string32(P, Req.Command);
      break;
    case MsgType::Frontier:
      P.u64(Req.StreamId);
      break;
    }
  });
}

void ppd::encodeResponse(const Response &Resp, LogWriter &Out) {
  encodeFrame(uint8_t(Resp.Type), Resp.RequestId, Out, [&](LogWriter &P) {
    switch (Resp.Type) {
    case RespType::SessionOpened:
      P.u64(Resp.SessionId);
      break;
    case RespType::Result:
    case RespType::StatsText:
      string32(P, Resp.Text);
      break;
    case RespType::Error:
      P.u32(uint32_t(Resp.Code));
      string32(P, Resp.Text);
      break;
    case RespType::Closed:
    case RespType::Busy:
    case RespType::ShutdownAck:
      break;
    case RespType::Ack:
      P.u64(Resp.StreamId);
      P.u32(Resp.Credits);
      break;
    }
  });
}

bool ppd::decodeRequest(const uint8_t *Data, size_t Size, Request &Out) {
  if (Size > MaxFramePayload)
    return false;
  ByteReader R(Data, Size);
  uint8_t Version = R.u8();
  uint8_t RawType = R.u8();
  Out.RequestId = R.u64();
  if (!R.ok() || Version != ProtocolVersion)
    return false;
  if (RawType < uint8_t(MsgType::OpenSession) ||
      RawType > uint8_t(MsgType::Frontier))
    return false;
  Out.Type = MsgType(RawType);
  switch (Out.Type) {
  case MsgType::OpenSession:
    Out.ProgramIndex = R.u32();
    break;
  case MsgType::Query:
    Out.SessionId = R.u64();
    if (!readString32(R, Out.Command))
      return false;
    break;
  case MsgType::Step:
    Out.SessionId = R.u64();
    Out.Direction = R.u8();
    if (Out.Direction > 1)
      return false;
    break;
  case MsgType::Races:
  case MsgType::Stats:
  case MsgType::CloseSession:
    Out.SessionId = R.u64();
    break;
  case MsgType::Shutdown:
    break;
  case MsgType::StreamHello:
    Out.ProgramIndex = R.u32();
    Out.ProgramHash = R.u64();
    break;
  case MsgType::SectionData:
    Out.StreamId = R.u64();
    Out.CutSeq = R.u64();
    Out.Pid = R.u32();
    Out.Flags = R.u8();
    if (R.ok() && (Out.Flags & ~SectionLastInCut) != 0)
      return false;
    Out.Stalls = R.u64();
    Out.FirstRecord = R.u32();
    if (!readBlob32(R, Out.Blob))
      return false;
    break;
  case MsgType::StreamEnd:
    Out.StreamId = R.u64();
    Out.Stalls = R.u64();
    if (!readBlob32(R, Out.Blob))
      return false;
    break;
  case MsgType::TailQuery:
    Out.StreamId = R.u64();
    if (!readString32(R, Out.Command))
      return false;
    break;
  case MsgType::Frontier:
    Out.StreamId = R.u64();
    break;
  }
  // A frame with trailing garbage is malformed, not silently tolerated:
  // that is what catches a body meant for a different message type.
  return R.ok() && R.atEnd();
}

bool ppd::decodeResponse(const uint8_t *Data, size_t Size, Response &Out) {
  if (Size > MaxFramePayload)
    return false;
  ByteReader R(Data, Size);
  uint8_t Version = R.u8();
  uint8_t RawType = R.u8();
  Out.RequestId = R.u64();
  if (!R.ok() || Version != ProtocolVersion)
    return false;
  if (RawType < uint8_t(RespType::SessionOpened) ||
      RawType > uint8_t(RespType::Ack))
    return false;
  Out.Type = RespType(RawType);
  switch (Out.Type) {
  case RespType::SessionOpened:
    Out.SessionId = R.u64();
    break;
  case RespType::Result:
  case RespType::StatsText:
    if (!readString32(R, Out.Text))
      return false;
    break;
  case RespType::Error: {
    uint32_t Code = R.u32();
    if (!R.ok() || Code < uint32_t(ErrCode::BadFrame) ||
        Code > uint32_t(ErrCode::StreamProtocol))
      return false;
    Out.Code = ErrCode(Code);
    if (!readString32(R, Out.Text))
      return false;
    break;
  }
  case RespType::Closed:
  case RespType::Busy:
  case RespType::ShutdownAck:
    break;
  case RespType::Ack:
    Out.StreamId = R.u64();
    Out.Credits = R.u32();
    break;
  }
  return R.ok() && R.atEnd();
}
