//===- server/Wire.cpp ----------------------------------------------------===//
//
// Part of PPD. See Wire.h.
//
//===----------------------------------------------------------------------===//

#include "server/Wire.h"

#include "server/DebugServer.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ppd;

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", Path.c_str());
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  while (Size != 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response is a failed
    // write, not a process-killing SIGPIPE.
    ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= size_t(N);
  }
  return true;
}

bool readAll(int Fd, uint8_t *Data, size_t Size) {
  while (Size != 0) {
    ssize_t N = ::read(Fd, Data, Size);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= size_t(N);
  }
  return true;
}

bool fillInetAddr(const std::string &Host, uint16_t Port, sockaddr_in &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (Host.empty() || Host == "*" || Host == "0.0.0.0") {
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  const char *Numeric = Host == "localhost" ? "127.0.0.1" : Host.c_str();
  if (::inet_pton(AF_INET, Numeric, &Addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: cannot parse host %s (IPv4 or localhost)\n",
                 Host.c_str());
    return false;
  }
  return true;
}

} // namespace

int ppd::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("socket");
    return -1;
  }
  struct stat St;
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      std::fprintf(stderr,
                   "error: %s exists and is not a socket; refusing to "
                   "remove it\n",
                   Path.c_str());
      ::close(Fd);
      return -1;
    }
    // A socket file proves nothing: it outlives the server that bound
    // it. Probe with a connect — only a *refused* socket is stale and
    // safe to clean up; a live server's socket must not be stolen.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe >= 0) {
      int Rc = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr));
      ::close(Probe);
      if (Rc == 0) {
        std::fprintf(stderr,
                     "error: %s is in use by a live server; refusing to "
                     "steal it\n",
                     Path.c_str());
        ::close(Fd);
        return -1;
      }
    }
    ::unlink(Path.c_str());
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 4096) < 0) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int ppd::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool ppd::splitHostPort(const std::string &HostPort, std::string &Host,
                        uint16_t &Port) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos)
    return false;
  Host = HostPort.substr(0, Colon);
  std::string PortStr = HostPort.substr(Colon + 1);
  if (PortStr.empty())
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(PortStr.c_str(), &End, 10);
  if (*End != '\0' || V > 65535)
    return false;
  Port = uint16_t(V);
  return true;
}

int ppd::listenTcp(const std::string &HostPort, uint16_t *BoundPort) {
  std::string Host;
  uint16_t Port = 0;
  if (!splitHostPort(HostPort, Host, Port)) {
    std::fprintf(stderr, "error: bad TCP address %s (want HOST:PORT)\n",
                 HostPort.c_str());
    return -1;
  }
  sockaddr_in Addr;
  if (!fillInetAddr(Host, Port, Addr))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    std::perror("socket");
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 4096) < 0) {
    std::fprintf(stderr, "error: cannot listen on tcp %s: %s\n",
                 HostPort.c_str(), std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  if (BoundPort) {
    sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    *BoundPort =
        ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0
            ? ntohs(Bound.sin_port)
            : Port;
  }
  return Fd;
}

int ppd::connectTcp(const std::string &HostPort) {
  std::string Host;
  uint16_t Port = 0;
  if (!splitHostPort(HostPort, Host, Port))
    return -1;
  sockaddr_in Addr;
  if (!fillInetAddr(Host.empty() ? "localhost" : Host, Port, Addr))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool ppd::isTcpEndpoint(const std::string &Address) {
  return Address.rfind("tcp:", 0) == 0;
}

int ppd::connectEndpoint(const std::string &Address) {
  return isTcpEndpoint(Address) ? connectTcp(Address.substr(4))
                                : connectUnix(Address);
}

void ppd::raiseFdLimit() {
  rlimit RL;
  if (::getrlimit(RLIMIT_NOFILE, &RL) == 0 && RL.rlim_cur < RL.rlim_max) {
    RL.rlim_cur = RL.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &RL);
  }
}

bool ppd::sendFrame(int Fd, const uint8_t *Data, size_t Size) {
  if (Size > MaxFramePayload)
    return false;
  uint32_t Len = uint32_t(Size);
  uint8_t Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  return writeAll(Fd, Prefix, 4) && writeAll(Fd, Data, Size);
}

bool ppd::recvFrame(int Fd, std::vector<uint8_t> &Out) {
  uint8_t Prefix[4];
  if (!readAll(Fd, Prefix, 4))
    return false;
  uint32_t Len = 0;
  std::memcpy(&Len, Prefix, 4);
  if (Len > MaxFramePayload)
    return false;
  Out.resize(Len);
  return Len == 0 || readAll(Fd, Out.data(), Len);
}

bool ClientConnection::connect(const std::string &Address) {
  disconnect();
  Fd = connectEndpoint(Address);
  return Fd >= 0;
}

void ClientConnection::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ClientConnection::roundTrip(Request Req, Response &Resp) {
  if (Fd < 0)
    return false;
  Req.RequestId = NextRequestId++;
  LogWriter W;
  encodeRequest(Req, W);
  // encodeRequest emitted the length prefix already.
  if (!writeAll(Fd, W.data(), W.size())) {
    disconnect();
    return false;
  }
  std::vector<uint8_t> Payload;
  if (!recvFrame(Fd, Payload)) {
    disconnect();
    return false;
  }
  if (!decodeResponse(Payload.data(), Payload.size(), Resp) ||
      Resp.RequestId != Req.RequestId) {
    // The stream is desynced: either the payload did not parse or the
    // id pairing broke. Any later read would return a stale response
    // for the wrong request, so kill the connection now.
    disconnect();
    return false;
  }
  return true;
}

namespace {

/// Per-connection server state: a write mutex so responses completed on
/// different scheduler workers never interleave bytes, and a Done flag
/// plus in-flight count so the accept loop can reap the connection once
/// the reader has exited and every pending response has been written.
struct Connection {
  int Fd = -1;
  std::mutex WriteMutex; ///< also guards Fd against close-vs-write races.
  std::thread Reader;
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> InFlight{0};
};

void serveConnection(DebugServer &Server, Connection &Conn) {
  FrameReader Frames;
  uint8_t Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Conn.Fd, Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return;
    Frames.feed(Buf, size_t(N));
    std::vector<uint8_t> Payload;
    while (Frames.next(Payload)) {
      Conn.InFlight.fetch_add(1, std::memory_order_acq_rel);
      Server.submitFrame(std::move(Payload),
                         [&Server, &Conn](std::vector<uint8_t> Frame) {
                           {
                             std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
                             // A dead peer is not an error worth more than
                             // dropping the bytes; the reader will see EOF.
                             if (Conn.Fd >= 0)
                               writeAll(Conn.Fd, Frame.data(), Frame.size());
                           }
                           Conn.InFlight.fetch_sub(1,
                                                   std::memory_order_acq_rel);
                         });
      Payload.clear();
    }
    if (Frames.malformed()) {
      // Impossible length prefix: answer once, then drop the stream —
      // there is no way to re-synchronize a framed connection.
      Server.metrics().countMalformed();
      Response Resp;
      Resp.Type = RespType::Error;
      Resp.Code = ErrCode::BadFrame;
      Resp.Text = "oversized or corrupt frame length";
      LogWriter W;
      encodeResponse(Resp, W);
      std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
      if (Conn.Fd >= 0)
        writeAll(Conn.Fd, W.data(), W.size());
      return;
    }
  }
}

} // namespace

int ppd::runUnixServer(DebugServer &Server, int ListenFd,
                       const std::string &Path) {
  // The shutdown hook runs on whichever worker processes the Shutdown
  // request: half-closing the listening socket makes accept() below
  // return with an error, which is the loop's exit signal.
  Server.onShutdown([ListenFd] { ::shutdown(ListenFd, SHUT_RDWR); });

  std::mutex ConnsMutex;
  std::vector<std::unique_ptr<Connection>> Conns;

  // Joins and frees every connection whose reader has exited (its fd is
  // already closed — see below) and whose last response has been
  // written. Called before each accept so a disconnected client costs
  // one reap, not an fd and a zombie thread parked until shutdown.
  auto Reap = [&ConnsMutex, &Conns] {
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    size_t Keep = 0;
    for (size_t I = 0; I != Conns.size(); ++I) {
      Connection &C = *Conns[I];
      if (C.Done.load(std::memory_order_acquire) &&
          C.InFlight.load(std::memory_order_acquire) == 0) {
        C.Reader.join();
        continue;
      }
      Conns[Keep++] = std::move(Conns[I]);
    }
    Conns.resize(Keep);
  };

  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Reap();
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *C = Conn.get();
    C->Reader = std::thread([&Server, C] {
      serveConnection(Server, *C);
      // Close under the write mutex: a response completing on a worker
      // checks Fd under the same lock, so the fd can neither be written
      // after close nor closed mid-write (and never aliases a freshly
      // accepted connection's fd).
      {
        std::lock_guard<std::mutex> Lock(C->WriteMutex);
        ::close(C->Fd);
        C->Fd = -1;
      }
      C->Done.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    Conns.push_back(std::move(Conn));
  }

  // Every request admitted before shutdown gets its response written
  // before any connection is torn down.
  Server.drain();

  {
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    for (auto &Conn : Conns) {
      std::lock_guard<std::mutex> FdLock(Conn->WriteMutex);
      if (Conn->Fd >= 0)
        ::shutdown(Conn->Fd, SHUT_RDWR);
    }
  }
  for (auto &Conn : Conns) {
    if (Conn->Reader.joinable())
      Conn->Reader.join();
  }
  ::close(ListenFd);
  ::unlink(Path.c_str());
  return Server.shuttingDown() ? 0 : 1;
}
