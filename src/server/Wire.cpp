//===- server/Wire.cpp ----------------------------------------------------===//
//
// Part of PPD. See Wire.h.
//
//===----------------------------------------------------------------------===//

#include "server/Wire.h"

#include "server/DebugServer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ppd;

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", Path.c_str());
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  while (Size != 0) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response is a failed
    // write, not a process-killing SIGPIPE.
    ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= size_t(N);
  }
  return true;
}

bool readAll(int Fd, uint8_t *Data, size_t Size) {
  while (Size != 0) {
    ssize_t N = ::read(Fd, Data, Size);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= size_t(N);
  }
  return true;
}

} // namespace

int ppd::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int ppd::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool ppd::sendFrame(int Fd, const uint8_t *Data, size_t Size) {
  if (Size > MaxFramePayload)
    return false;
  uint32_t Len = uint32_t(Size);
  uint8_t Prefix[4];
  std::memcpy(Prefix, &Len, 4);
  return writeAll(Fd, Prefix, 4) && writeAll(Fd, Data, Size);
}

bool ppd::recvFrame(int Fd, std::vector<uint8_t> &Out) {
  uint8_t Prefix[4];
  if (!readAll(Fd, Prefix, 4))
    return false;
  uint32_t Len = 0;
  std::memcpy(&Len, Prefix, 4);
  if (Len > MaxFramePayload)
    return false;
  Out.resize(Len);
  return Len == 0 || readAll(Fd, Out.data(), Len);
}

bool ClientConnection::connect(const std::string &Path) {
  disconnect();
  Fd = connectUnix(Path);
  return Fd >= 0;
}

void ClientConnection::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ClientConnection::roundTrip(Request Req, Response &Resp) {
  if (Fd < 0)
    return false;
  Req.RequestId = NextRequestId++;
  LogWriter W;
  encodeRequest(Req, W);
  // encodeRequest emitted the length prefix already.
  if (!writeAll(Fd, W.data(), W.size()))
    return false;
  std::vector<uint8_t> Payload;
  if (!recvFrame(Fd, Payload))
    return false;
  return decodeResponse(Payload.data(), Payload.size(), Resp) &&
         Resp.RequestId == Req.RequestId;
}

namespace {

/// Per-connection server state: a write mutex so responses completed on
/// different scheduler workers never interleave bytes.
struct Connection {
  int Fd = -1;
  std::mutex WriteMutex;
  std::thread Reader;
};

void serveConnection(DebugServer &Server, Connection &Conn) {
  FrameReader Frames;
  uint8_t Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Conn.Fd, Buf, sizeof(Buf));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return;
    Frames.feed(Buf, size_t(N));
    std::vector<uint8_t> Payload;
    while (Frames.next(Payload)) {
      Server.submitFrame(std::move(Payload),
                         [&Server, &Conn](std::vector<uint8_t> Frame) {
                           std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
                           // A dead peer is not an error worth more than
                           // dropping the bytes; the reader will see EOF.
                           writeAll(Conn.Fd, Frame.data(), Frame.size());
                         });
      Payload.clear();
    }
    if (Frames.malformed()) {
      // Impossible length prefix: answer once, then drop the stream —
      // there is no way to re-synchronize a framed connection.
      Server.metrics().countMalformed();
      Response Resp;
      Resp.Type = RespType::Error;
      Resp.Code = ErrCode::BadFrame;
      Resp.Text = "oversized or corrupt frame length";
      LogWriter W;
      encodeResponse(Resp, W);
      std::lock_guard<std::mutex> Lock(Conn.WriteMutex);
      writeAll(Conn.Fd, W.data(), W.size());
      return;
    }
  }
}

} // namespace

int ppd::runUnixServer(DebugServer &Server, int ListenFd,
                       const std::string &Path) {
  // The shutdown hook runs on whichever worker processes the Shutdown
  // request: half-closing the listening socket makes accept() below
  // return with an error, which is the loop's exit signal.
  Server.onShutdown([ListenFd] { ::shutdown(ListenFd, SHUT_RDWR); });

  std::mutex ConnsMutex;
  std::vector<std::unique_ptr<Connection>> Conns;

  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *C = Conn.get();
    C->Reader = std::thread([&Server, C] { serveConnection(Server, *C); });
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    Conns.push_back(std::move(Conn));
  }

  // Every request admitted before shutdown gets its response written
  // before any connection is torn down.
  Server.drain();

  {
    std::lock_guard<std::mutex> Lock(ConnsMutex);
    for (auto &Conn : Conns)
      ::shutdown(Conn->Fd, SHUT_RDWR);
  }
  for (auto &Conn : Conns) {
    if (Conn->Reader.joinable())
      Conn->Reader.join();
    ::close(Conn->Fd);
  }
  ::close(ListenFd);
  ::unlink(Path.c_str());
  return Server.shuttingDown() ? 0 : 1;
}
