//===- server/Transport.h - epoll server transport --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness-based server transport (DESIGN.md §14): one
/// EventDispatcher thread owns every listening and connection fd, each
/// connection is a small state machine (FrameReader reassembly on the
/// read side, a bounded byte queue drained on EPOLLOUT on the write
/// side), and requests flow through the same DebugServer::submitFrame
/// path as the threaded transport — responses are byte-identical by
/// construction, which is what makes `--transport threaded` a usable
/// differential oracle.
///
/// Lifecycle rules the threaded loop never had:
///   * EOF/error reaps the connection immediately (fd closed, state
///     freed) instead of parking it until shutdown;
///   * a peer that stops reading while responses accumulate past
///     MaxWriteQueueBytes is disconnected (typed metric), never buffered
///     without bound and never allowed to block the loop;
///   * an optional idle timeout reaps connections with no traffic,
///     driven by the dispatcher's timer wheel.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_TRANSPORT_H
#define PPD_SERVER_TRANSPORT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ppd {

class DebugServer;

struct EpollServerOptions {
  /// Already-listening AF_UNIX fd, or -1 for no unix listener. The
  /// transport owns it from here: closed (and \p UnixPath unlinked) when
  /// the loop exits.
  int UnixListenFd = -1;
  std::string UnixPath;
  /// Already-listening TCP fd, or -1 for no TCP listener.
  int TcpListenFd = -1;
  /// Reap connections with no traffic for this long; 0 disables.
  uint64_t IdleTimeoutMs = 0;
  /// Per-connection cap on queued-but-unsent response bytes. A peer that
  /// falls further behind is disconnected (see writeOverflows()).
  size_t MaxWriteQueueBytes = 4u << 20;
  /// When nonzero, sets SO_SNDBUF on every accepted connection. A test
  /// and bench knob: shrinking the kernel buffer makes the userspace
  /// write-queue bound reachable with small payloads.
  int SendBufBytes = 0;
};

/// Serves \p Server over epoll until a Shutdown request stops the
/// dispatcher. At least one listener must be given. Returns 0 on a clean
/// shutdown, 1 otherwise — same contract as runUnixServer.
int runEpollServer(DebugServer &Server, const EpollServerOptions &Options);

} // namespace ppd

#endif // PPD_SERVER_TRANSPORT_H
