//===- server/Transport.cpp -----------------------------------------------===//
//
// Part of PPD. See Transport.h.
//
//===----------------------------------------------------------------------===//

#include "server/Transport.h"

#include "server/DebugServer.h"
#include "server/EventDispatcher.h"
#include "server/Wire.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ppd;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// One connection's state machine. Identified by a monotonically
/// increasing id, never by fd: fds are reused by the kernel, and a
/// response completing on a scheduler worker after its connection died
/// must drop cleanly instead of writing into a stranger's socket.
struct Conn {
  uint64_t Id = 0;
  int Fd = -1;
  FrameReader Frames;
  std::vector<uint8_t> WriteBuf; ///< queued bytes; [WriteOff, size) unsent.
  size_t WriteOff = 0;
  bool WantWrite = false;      ///< EPOLLOUT currently armed.
  bool CloseAfterFlush = false;
  uint64_t LastActivityMs = 0;
  EventDispatcher::TimerId IdleTimer = 0;
};

class EpollTransport {
public:
  EpollTransport(DebugServer &Server, const EpollServerOptions &Options)
      : Server(Server), Opts(Options) {}
  int run();

private:
  void onAccept(int ListenFd, bool Tcp);
  void onConnEvent(uint64_t Id, uint32_t Events);
  void readFrom(uint64_t Id);
  void enqueueResponse(uint64_t Id, std::vector<uint8_t> Frame);
  void flush(Conn &C);
  void closeConn(uint64_t Id);
  void armIdle(uint64_t Id, uint64_t DelayMs);
  void flushAllBlocking();

  static size_t pendingBytes(const Conn &C) {
    return C.WriteBuf.size() - C.WriteOff;
  }

  DebugServer &Server;
  EpollServerOptions Opts;
  EventDispatcher Loop;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
  std::thread::id LoopThread;
};

void EpollTransport::onAccept(int ListenFd, bool Tcp) {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // EAGAIN: drained. Transient per-connection failures (ECONNABORTED,
      // EMFILE under fd pressure) must not kill the listener.
      return;
    }
    if (Tcp) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    }
    if (Opts.SendBufBytes != 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SendBufBytes,
                   sizeof(Opts.SendBufBytes));
    auto C = std::make_unique<Conn>();
    C->Id = NextConnId++;
    C->Fd = Fd;
    C->LastActivityMs = EventDispatcher::nowMs();
    uint64_t Id = C->Id;
    Conns.emplace(Id, std::move(C));
    Loop.add(Fd, EPOLLIN, [this, Id](uint32_t Events) {
      onConnEvent(Id, Events);
    });
    Server.metrics().countConnAccepted();
    Server.metrics().noteActiveConns(Conns.size());
    if (Opts.IdleTimeoutMs != 0)
      armIdle(Id, Opts.IdleTimeoutMs);
  }
}

void EpollTransport::armIdle(uint64_t Id, uint64_t DelayMs) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  It->second->IdleTimer = Loop.addTimer(DelayMs, [this, Id] {
    auto It2 = Conns.find(Id);
    if (It2 == Conns.end())
      return;
    Conn &C = *It2->second;
    C.IdleTimer = 0;
    uint64_t Idle = EventDispatcher::nowMs() - C.LastActivityMs;
    if (Idle >= Opts.IdleTimeoutMs) {
      Server.metrics().countIdleDisconnect();
      closeConn(Id);
      return;
    }
    // Traffic since arming: sleep out the remainder instead of
    // re-arming on every read (10k busy connections would churn the
    // wheel otherwise).
    armIdle(Id, Opts.IdleTimeoutMs - Idle);
  });
}

void EpollTransport::onConnEvent(uint64_t Id, uint32_t Events) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  if (Events & (EPOLLERR | EPOLLHUP)) {
    closeConn(Id);
    return;
  }
  if (Events & EPOLLOUT) {
    flush(*It->second);
    if (Conns.find(Id) == Conns.end())
      return; // flush error or CloseAfterFlush completed.
  }
  if (Events & EPOLLIN)
    readFrom(Id);
}

void EpollTransport::readFrom(uint64_t Id) {
  uint8_t Buf[1 << 16];
  for (;;) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      closeConn(Id);
      return;
    }
    if (N == 0) {
      closeConn(Id);
      return;
    }
    C.LastActivityMs = EventDispatcher::nowMs();
    C.Frames.feed(Buf, size_t(N));
    std::vector<uint8_t> Payload;
    for (;;) {
      // Re-find each round: an inline response (Threads=0, stream
      // messages, rejections) can overflow the write queue and reap the
      // connection out from under this loop.
      auto It2 = Conns.find(Id);
      if (It2 == Conns.end())
        return;
      if (!It2->second->Frames.next(Payload))
        break;
      Server.submitFrame(
          std::move(Payload), [this, Id](std::vector<uint8_t> Frame) {
            if (std::this_thread::get_id() == LoopThread) {
              enqueueResponse(Id, std::move(Frame));
              return;
            }
            // Scheduler worker: marshal onto the loop thread. The id (not
            // a pointer) makes a response for a reaped connection a no-op.
            Loop.post([this, Id, Resp = std::move(Frame)]() mutable {
              enqueueResponse(Id, std::move(Resp));
            });
          });
      Payload.clear();
    }
    auto It3 = Conns.find(Id);
    if (It3 == Conns.end())
      return;
    if (It3->second->Frames.malformed()) {
      // Same contract as the threaded transport: answer once, then drop
      // the stream — a framed connection cannot re-synchronize.
      Server.metrics().countMalformed();
      Response Resp;
      Resp.Type = RespType::Error;
      Resp.Code = ErrCode::BadFrame;
      Resp.Text = "oversized or corrupt frame length";
      LogWriter W;
      encodeResponse(Resp, W);
      Conn &C3 = *It3->second;
      C3.WriteBuf.insert(C3.WriteBuf.end(), W.data(), W.data() + W.size());
      C3.CloseAfterFlush = true;
      flush(C3);
      return;
    }
  }
}

void EpollTransport::enqueueResponse(uint64_t Id, std::vector<uint8_t> Frame) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return; // connection died while the request was in flight.
  Conn &C = *It->second;
  if (C.CloseAfterFlush)
    return; // already poisoned; nothing after the error frame.
  if (pendingBytes(C) + Frame.size() > Opts.MaxWriteQueueBytes) {
    // The peer is not reading. Shedding it is the backpressure: memory
    // stays bounded and the loop never blocks on one slow client.
    Server.metrics().countWriteOverflow();
    closeConn(Id);
    return;
  }
  C.WriteBuf.insert(C.WriteBuf.end(), Frame.begin(), Frame.end());
  flush(C);
}

void EpollTransport::flush(Conn &C) {
  uint64_t Id = C.Id;
  while (pendingBytes(C) != 0) {
    ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WriteOff, pendingBytes(C),
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!C.WantWrite) {
          C.WantWrite = true;
          Loop.modify(C.Fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      closeConn(Id);
      return;
    }
    C.WriteOff += size_t(N);
  }
  C.WriteBuf.clear();
  C.WriteOff = 0;
  if (C.WantWrite) {
    C.WantWrite = false;
    Loop.modify(C.Fd, EPOLLIN);
  }
  if (C.CloseAfterFlush)
    closeConn(Id);
}

void EpollTransport::closeConn(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;
  if (C.IdleTimer != 0)
    Loop.cancelTimer(C.IdleTimer);
  Loop.remove(C.Fd);
  ::close(C.Fd);
  Conns.erase(It);
  Server.metrics().countConnClosed();
}

void EpollTransport::flushAllBlocking() {
  // Post-shutdown: the drain guaranteed every admitted request produced
  // its response bytes; push what is still queued with a bounded poll so
  // a wedged peer cannot hold the process open.
  uint64_t Deadline = EventDispatcher::nowMs() + 5000;
  for (auto &Entry : Conns) {
    Conn &C = *Entry.second;
    while (pendingBytes(C) != 0) {
      uint64_t Now = EventDispatcher::nowMs();
      if (Now >= Deadline)
        return;
      pollfd P{C.Fd, POLLOUT, 0};
      if (::poll(&P, 1, int(Deadline - Now)) <= 0)
        break;
      ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WriteOff,
                         pendingBytes(C), MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      C.WriteOff += size_t(N);
    }
  }
}

int EpollTransport::run() {
  if (!Loop.valid())
    return 1;
  if (Opts.UnixListenFd < 0 && Opts.TcpListenFd < 0) {
    std::fprintf(stderr, "error: epoll transport needs a listener\n");
    return 1;
  }
  LoopThread = std::this_thread::get_id();
  // The shutdown hook runs on whichever thread processes the Shutdown
  // request; stop() is the thread-safe loop-exit signal (the epoll
  // analogue of half-closing the threaded listener).
  Server.onShutdown([this] { Loop.stop(); });

  for (int ListenFd : {Opts.UnixListenFd, Opts.TcpListenFd}) {
    if (ListenFd < 0)
      continue;
    bool Tcp = ListenFd == Opts.TcpListenFd;
    if (!setNonBlocking(ListenFd) ||
        !Loop.add(ListenFd, EPOLLIN, [this, ListenFd, Tcp](uint32_t) {
          onAccept(ListenFd, Tcp);
        })) {
      std::perror("listen fd registration");
      return 1;
    }
  }

  Loop.run();

  // Same sequencing as the threaded shutdown: every admitted request is
  // answered before any connection is torn down.
  Server.drain();
  Loop.runPosted();
  flushAllBlocking();

  for (auto &Entry : Conns)
    ::close(Entry.second->Fd);
  Conns.clear();
  if (Opts.UnixListenFd >= 0) {
    ::close(Opts.UnixListenFd);
    if (!Opts.UnixPath.empty())
      ::unlink(Opts.UnixPath.c_str());
  }
  if (Opts.TcpListenFd >= 0)
    ::close(Opts.TcpListenFd);
  return Server.shuttingDown() ? 0 : 1;
}

} // namespace

int ppd::runEpollServer(DebugServer &Server,
                        const EpollServerOptions &Options) {
  EpollTransport Transport(Server, Options);
  return Transport.run();
}
