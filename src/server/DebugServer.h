//===- server/DebugServer.h - The PPD debug server --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent debug server: programs + logs in, framed
/// requests in, framed responses out. It composes the pieces —
/// SessionRegistry (who is debugging what), RequestScheduler (admission,
/// timeouts, drain), ServerMetrics (counters) — behind two entry points:
///
///   * handleFrame(): decode → dispatch → encode, synchronously on the
///     caller's thread. The in-process transport: tests and benchmarks
///     drive full sessions without a socket.
///   * submitFrame(): the same, but through the bounded scheduler; the
///     response reaches the completion callback on a worker thread.
///     Malformed frames and Busy/ShuttingDown rejections answer
///     immediately on the submitting thread — backpressure must not
///     consume queue space.
///
/// The server outlives any transport: socket handling lives in Wire.h and
/// only moves bytes.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_DEBUGSERVER_H
#define PPD_SERVER_DEBUGSERVER_H

#include "server/Protocol.h"
#include "server/RequestScheduler.h"
#include "server/ServerMetrics.h"
#include "server/SessionRegistry.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ppd {

struct DebugServerOptions {
  /// Request worker threads (0 = execute inline, deterministic).
  unsigned Threads = 0;
  /// Bounded-queue depth; beyond it clients get Busy.
  unsigned QueueLimit = 128;
  /// Queue-wait budget per request in ms; 0 disables.
  uint64_t TimeoutMs = 0;
  /// Session cap and shared replay-cache sizing.
  SessionRegistryOptions Registry;
  /// Sessions idle for this many registry ticks are evicted on the next
  /// open (0 disables eviction).
  uint64_t IdleEvictTicks = 0;
};

class DebugServer {
public:
  explicit DebugServer(DebugServerOptions Options = {});
  ~DebugServer();

  /// Registers a program and its execution log; returns the index
  /// OpenSession requests name.
  uint32_t addProgram(std::unique_ptr<CompiledProgram> Prog,
                      ExecutionLog Log);

  /// Paged variant: sessions fault log sections in through the registry's
  /// shared buffer pool instead of copying the whole log. \p Index and
  /// \p Graph carry the `.ppdb` sidecar's persisted artifacts when warm.
  uint32_t
  addProgram(std::unique_ptr<CompiledProgram> Prog, PagedLog Paged,
             std::shared_ptr<const LogIndex> Index = nullptr,
             std::shared_ptr<const ParallelDynamicGraph> Graph = nullptr);

  /// Dispatches one decoded request synchronously.
  Response handle(const Request &Req);

  /// Decodes one frame payload, dispatches it, returns the encoded
  /// response frame (length prefix included). Synchronous.
  std::vector<uint8_t> handleFrame(const uint8_t *Data, size_t Size);

  /// Queues one frame payload through the scheduler; \p Done receives the
  /// encoded response frame, on a worker thread for admitted requests or
  /// on the calling thread for immediate rejections (malformed, Busy,
  /// ShuttingDown).
  void submitFrame(std::vector<uint8_t> Payload,
                   std::function<void(std::vector<uint8_t>)> Done);

  /// Stops admission and blocks until all in-flight requests finished.
  void drain();

  /// True once a Shutdown request was accepted.
  bool shuttingDown() const;

  /// Invoked (once) from the thread that processes a Shutdown request;
  /// the socket transport uses it to break its accept loop.
  void onShutdown(std::function<void()> Hook);

  /// Installs the streaming-ingest dispatcher (the src/stream layer,
  /// which links against this library — hence a hook, not a direct
  /// call). Stream messages (StreamHello/SectionData/StreamEnd/
  /// TailQuery/Frontier) forward to it; without one they answer
  /// NoSuchStream. Install before serving frames — the pointer itself is
  /// unsynchronized.
  void setStreamDispatcher(std::function<Response(const Request &)> Fn) {
    StreamDispatcher = std::move(Fn);
  }

  ServerMetrics &metrics() { return Metrics; }
  SessionRegistry &registry() { return *Registry; }
  RequestScheduler &scheduler() { return *Scheduler; }

  /// The --metrics-dump report: server counters + aggregated replay
  /// stats.
  std::string metricsReport() const;

private:
  Response dispatch(const Request &Req);
  std::vector<uint8_t> encodeFrameBytes(const Response &Resp);

  DebugServerOptions Options;
  std::unique_ptr<SessionRegistry> Registry;
  std::unique_ptr<RequestScheduler> Scheduler;
  ServerMetrics Metrics;

  mutable std::mutex ShutdownMutex;
  std::function<void()> ShutdownHook;
  std::function<Response(const Request &)> StreamDispatcher;
  bool ShutdownRequested = false;
};

} // namespace ppd

#endif // PPD_SERVER_DEBUGSERVER_H
