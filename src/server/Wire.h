//===- server/Wire.h - Unix-socket transport --------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-moving layer under the debug server: AF_UNIX stream sockets,
/// frame send/receive, an accept loop with one reader thread per
/// connection, and the client-side connection the `ppd client` tool uses.
/// Everything protocol-shaped lives in Protocol.h; everything
/// session-shaped lives in DebugServer.h — this file only ships frames.
///
/// Shutdown path: a Shutdown request trips the server's shutdown hook,
/// which half-closes the listening socket to break accept(); the loop
/// then drains in-flight requests (every accepted request is answered),
/// unblocks the connection readers, joins them, and removes the socket
/// path.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_WIRE_H
#define PPD_SERVER_WIRE_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

class DebugServer;

/// Creates, binds, and listens on an AF_UNIX stream socket at \p Path
/// (removing a stale file first). Returns the fd, or -1 with a message
/// on stderr.
int listenUnix(const std::string &Path);

/// Connects to the server socket at \p Path. Returns the fd or -1.
int connectUnix(const std::string &Path);

/// Writes one frame: u32 length prefix + \p Size payload bytes. Retries
/// short writes and EINTR. False on a broken connection.
bool sendFrame(int Fd, const uint8_t *Data, size_t Size);

/// Reads one complete frame payload into \p Out. False on EOF, error, or
/// an impossible length prefix.
bool recvFrame(int Fd, std::vector<uint8_t> &Out);

/// A client connection: synchronous request/response round-trips with
/// automatically assigned request ids. Not thread-safe; one per client.
class ClientConnection {
public:
  ClientConnection() = default;
  ~ClientConnection() { disconnect(); }
  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  bool connect(const std::string &Path);
  void disconnect();
  bool connected() const { return Fd >= 0; }

  /// Sends \p Req (stamping a fresh RequestId) and blocks for the
  /// matching response. False on transport failure.
  bool roundTrip(Request Req, Response &Resp);

private:
  int Fd = -1;
  uint64_t NextRequestId = 1;
};

/// Serves \p Server on the already-listening \p ListenFd until a
/// Shutdown request (or accept failure). Owns the accept loop, the
/// per-connection reader threads, and the drain-then-disconnect shutdown
/// sequence. Returns 0 on a clean shutdown.
int runUnixServer(DebugServer &Server, int ListenFd,
                  const std::string &Path);

} // namespace ppd

#endif // PPD_SERVER_WIRE_H
