//===- server/Wire.h - Socket transport helpers -----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-moving layer under the debug server: AF_UNIX and TCP stream
/// sockets, frame send/receive, the legacy thread-per-connection accept
/// loop (kept as the `--transport threaded` differential oracle; the
/// default epoll transport lives in Transport.h), and the client-side
/// connection the `ppd client` tool uses. Everything protocol-shaped
/// lives in Protocol.h; everything session-shaped lives in DebugServer.h
/// — this file only ships frames.
///
/// Addresses: helpers that take an *endpoint* accept either a unix
/// socket path or `tcp:HOST:PORT`, so every client-side caller (ppd
/// client, stream ingest, bots) reaches TCP servers with no code of its
/// own.
///
/// Shutdown path (threaded transport): a Shutdown request trips the
/// server's shutdown hook, which half-closes the listening socket to
/// break accept(); the loop then drains in-flight requests (every
/// accepted request is answered), unblocks the connection readers, joins
/// them, and removes the socket path.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_WIRE_H
#define PPD_SERVER_WIRE_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

class DebugServer;

/// Creates, binds, and listens on an AF_UNIX stream socket at \p Path.
/// A stale socket file (no listener behind it) is cleaned up; a *live*
/// server's socket is refused with an error instead of stolen. Returns
/// the fd, or -1 with a message on stderr.
int listenUnix(const std::string &Path);

/// Connects to the server socket at \p Path. Returns the fd or -1.
int connectUnix(const std::string &Path);

/// Splits "HOST:PORT" (host may be empty for INADDR_ANY). False on a
/// missing colon or an unparseable port.
bool splitHostPort(const std::string &HostPort, std::string &Host,
                   uint16_t &Port);

/// Creates, binds, and listens on a TCP socket at "HOST:PORT" (port 0
/// picks an ephemeral port; the bound port comes back via \p BoundPort).
/// Returns the fd, or -1 with a message on stderr.
int listenTcp(const std::string &HostPort, uint16_t *BoundPort = nullptr);

/// Connects to a TCP server at "HOST:PORT". Returns the fd or -1.
int connectTcp(const std::string &HostPort);

/// True when \p Address is "tcp:HOST:PORT" rather than a unix path.
bool isTcpEndpoint(const std::string &Address);

/// Connects to \p Address — "tcp:HOST:PORT" or a unix socket path.
int connectEndpoint(const std::string &Address);

/// Raises RLIMIT_NOFILE's soft limit to the hard limit (best effort).
/// The serve and bots paths call this: 10k connections need 10k fds.
void raiseFdLimit();

/// Writes one frame: u32 length prefix + \p Size payload bytes. Retries
/// short writes and EINTR. False on a broken connection.
bool sendFrame(int Fd, const uint8_t *Data, size_t Size);

/// Reads one complete frame payload into \p Out. False on EOF, error, or
/// an impossible length prefix.
bool recvFrame(int Fd, std::vector<uint8_t> &Out);

/// A client connection: synchronous request/response round-trips with
/// automatically assigned request ids. Not thread-safe; one per client.
class ClientConnection {
public:
  ClientConnection() = default;
  ~ClientConnection() { disconnect(); }
  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// \p Address is an endpoint: unix path or "tcp:HOST:PORT".
  bool connect(const std::string &Address);
  void disconnect();
  bool connected() const { return Fd >= 0; }

  /// Sends \p Req (stamping a fresh RequestId) and blocks for the
  /// matching response. False on transport failure — including a decode
  /// failure or a response id that does not match, both of which
  /// disconnect: the stream position is unknowable after either, so the
  /// next call must fail fast instead of reading a stale response.
  bool roundTrip(Request Req, Response &Resp);

private:
  int Fd = -1;
  uint64_t NextRequestId = 1;
};

/// Serves \p Server on the already-listening \p ListenFd until a
/// Shutdown request (or accept failure). Owns the accept loop, the
/// per-connection reader threads, and the drain-then-disconnect shutdown
/// sequence. Disconnected clients are reaped (fd closed as the reader
/// exits; thread joined on a later accept) rather than parked until
/// shutdown. Returns 0 on a clean shutdown.
int runUnixServer(DebugServer &Server, int ListenFd,
                  const std::string &Path);

} // namespace ppd

#endif // PPD_SERVER_WIRE_H
