//===- server/Bots.h - scripted client-fleet load generator -----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ppd bots`: a single-threaded epoll fleet of scripted debug clients —
/// the load half of the transport's 10k-connection acceptance proof.
/// Each bot is a tiny state machine (connect → OpenSession → N serial
/// queries → hold → CloseSession → disconnect) on a non-blocking socket;
/// the whole fleet shares one EventDispatcher, so one process can hold
/// tens of thousands of live sessions against a server on the same box.
///
/// Connects are started in batches per timer tick (a SYN avalanche
/// would just measure the backlog), per-query latency lands in a
/// client-side LatencyHistogram, and with HoldOpen every bot keeps its
/// session open until the last bot has finished — which is what makes
/// "N concurrent sessions" a measured fact (PeakConcurrent) instead of
/// a churn artifact.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_BOTS_H
#define PPD_SERVER_BOTS_H

#include <cstdint>
#include <functional>
#include <string>

namespace ppd {

struct BotFleetOptions {
  /// Endpoint: unix socket path or "tcp:HOST:PORT".
  std::string Address;
  unsigned NumBots = 100;
  unsigned QueriesPerBot = 10;
  /// The debugger command every query sends.
  std::string Command = "where 0";
  uint32_t ProgramIndex = 0;
  /// One server session shared by every bot (opened and closed by the
  /// fleet runner) instead of a session per bot.
  bool SharedSession = false;
  /// Bots that finish their queries stay connected until every bot has
  /// finished, then all close — peak concurrency equals fleet size.
  bool HoldOpen = true;
  /// Mean think time between a query's answer and the next query
  /// (uniform jitter in [1, 2*ThinkMs], staggered per bot). 0 = send
  /// back-to-back: an open-throttle saturation run, where measured
  /// latency is queueing depth, not service time. Nonzero makes the
  /// fleet a closed-loop pacer, the connections-vs-latency instrument.
  unsigned ThinkMs = 0;
  /// Connects started per 10 ms tick.
  unsigned ConnectBatch = 512;
  /// Whole-fleet deadline; leftover bots count as failed.
  uint64_t DeadlineMs = 120000;
  /// Optional progress sink (CLI prints it; tests and bench leave it
  /// empty).
  std::function<void(const std::string &)> Progress;
};

struct BotFleetResult {
  uint64_t Connected = 0;       ///< bots whose connect succeeded.
  uint64_t Completed = 0;       ///< bots through the full script.
  uint64_t Failed = 0;
  uint64_t QueriesAnswered = 0;
  uint64_t BusyRetries = 0;     ///< Busy responses retried after backoff.
  uint64_t PeakConcurrent = 0;  ///< most sockets live at once.
  uint64_t WallMs = 0;
  uint64_t P50us = 0;           ///< per-query round-trip percentiles.
  uint64_t P99us = 0;
  uint64_t MeanUs = 0;
  bool TimedOut = false;
  std::string Error;            ///< empty on a usable run.

  bool ok() const { return Error.empty() && !TimedOut && Failed == 0; }
};

/// Runs the fleet to completion (or deadline) and reports. Blocking;
/// call from a thread that owns no dispatcher.
BotFleetResult runBotFleet(const BotFleetOptions &Options);

} // namespace ppd

#endif // PPD_SERVER_BOTS_H
