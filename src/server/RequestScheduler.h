//===- server/RequestScheduler.h - Bounded request execution ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control in front of the worker pool. A server that buffers
/// every request it cannot run yet trades one failure mode (a visible
/// Busy) for a worse one (unbounded memory and multi-second tail
/// latency), so the scheduler enforces:
///
///   * a bounded queue — submissions beyond QueueLimit outstanding
///     requests are rejected immediately (the caller sends an explicit
///     Busy response; the client retries);
///   * per-request timeouts — each submission carries its enqueue time;
///     a task that waited past TimeoutMs is handed to its callback as
///     expired *instead of* being executed, so a backlogged server sheds
///     stale work rather than burning replay time on answers nobody is
///     waiting for;
///   * graceful drain — drain() stops admission and blocks until every
///     admitted request has finished, which is what lets shutdown promise
///     "all accepted requests were answered".
///
/// With zero worker threads, admitted tasks run inline in submit() —
/// deterministic, which the bit-identity tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_REQUESTSCHEDULER_H
#define PPD_SERVER_REQUESTSCHEDULER_H

#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

namespace ppd {

struct RequestSchedulerOptions {
  /// Worker threads executing requests (0 = inline, deterministic).
  unsigned Threads = 0;
  /// Maximum admitted-but-unfinished requests before Busy (0 = no cap).
  unsigned QueueLimit = 128;
  /// Queue-wait budget per request; 0 disables timeouts.
  uint64_t TimeoutMs = 0;
};

class RequestScheduler {
public:
  enum class Admission {
    Accepted,     ///< task will run (or ran inline)
    Busy,         ///< queue full — caller answers Busy
    ShuttingDown, ///< drain started — caller answers ShuttingDown
  };

  /// A task receives true when it expired in the queue; it must then
  /// answer with a Timeout error instead of doing the work.
  using Task = std::function<void(bool TimedOut)>;

  explicit RequestScheduler(RequestSchedulerOptions Options)
      : Options(Options), Pool(Options.Threads) {}

  ~RequestScheduler() { drain(); }

  Admission submit(Task Fn) {
    auto Enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Draining)
        return Admission::ShuttingDown;
      if (Options.QueueLimit != 0 && InFlight >= Options.QueueLimit)
        return Admission::Busy;
      ++InFlight;
      if (InFlight > HighWater)
        HighWater = InFlight;
    }
    Pool.submit([this, Enqueued, Fn = std::move(Fn)] {
      bool TimedOut = false;
      if (Options.TimeoutMs != 0) {
        auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - Enqueued);
        TimedOut = uint64_t(Waited.count()) > Options.TimeoutMs;
      }
      Fn(TimedOut);
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        Idle.notify_all();
    });
    return Admission::Accepted;
  }

  /// Stops admission and waits until every admitted request finished.
  /// Idempotent.
  void drain() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Draining = true;
    Idle.wait(Lock, [this] { return InFlight == 0; });
  }

  /// Admitted-but-unfinished requests right now.
  unsigned inFlight() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return InFlight;
  }

  /// Deepest the queue has been.
  unsigned highWater() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return HighWater;
  }

  bool draining() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Draining;
  }

  unsigned numThreads() const { return Pool.numThreads(); }

private:
  RequestSchedulerOptions Options;
  ThreadPool Pool;
  mutable std::mutex Mutex;
  std::condition_variable Idle;
  unsigned InFlight = 0;
  unsigned HighWater = 0;
  bool Draining = false;
};

} // namespace ppd

#endif // PPD_SERVER_REQUESTSCHEDULER_H
