//===- server/ServerMetrics.h - Server-wide counters ------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic counters and latency histograms for the debug server. Request
/// handlers record into relaxed atomics (never a lock on the hot path);
/// the `stats` protocol message and the --metrics-dump report read a
/// point-in-time snapshot. Replay-layer counters (cache hits, replayed
/// e-blocks) are not duplicated here — they come from the same
/// ReplayServiceStats snapshot the debugger `stats` command renders, so
/// both views share one source of truth.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_SERVERMETRICS_H
#define PPD_SERVER_SERVERMETRICS_H

#include "server/Protocol.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ppd {

/// Power-of-two-bucketed latency histogram (microseconds). Bucket B
/// counts samples in [2^B, 2^(B+1)); bucket 0 additionally holds 0–1 µs.
/// Recording is one relaxed fetch_add — safe from any thread.
class LatencyHistogram {
public:
  static constexpr unsigned NumBuckets = 32;

  void record(uint64_t Micros) {
    unsigned B = 0;
    while ((uint64_t(1) << (B + 1)) <= Micros && B + 1 < NumBuckets)
      ++B;
    Buckets[B].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Micros, std::memory_order_relaxed);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  uint64_t meanMicros() const {
    uint64_t N = count();
    return N ? Sum.load(std::memory_order_relaxed) / N : 0;
  }

  /// Upper bound of the bucket holding the \p Pct-th percentile sample
  /// (Pct in [0,100]). 0 when empty.
  uint64_t percentileMicros(double Pct) const {
    uint64_t N = count();
    if (N == 0)
      return 0;
    uint64_t Rank = uint64_t(Pct / 100.0 * double(N - 1)) + 1;
    uint64_t Seen = 0;
    for (unsigned B = 0; B != NumBuckets; ++B) {
      Seen += Buckets[B].load(std::memory_order_relaxed);
      if (Seen >= Rank)
        return uint64_t(1) << (B + 1);
    }
    return uint64_t(1) << NumBuckets;
  }

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

/// One server's counters. Indexed by wire message type so the report and
/// the counters can never drift apart.
class ServerMetrics {
public:
  /// MsgType values are 1-based; slot 0 is unused.
  static constexpr unsigned NumTypes = 13;

  void countRequest(MsgType Type) {
    Requests[unsigned(Type) % NumTypes].fetch_add(
        1, std::memory_order_relaxed);
  }
  void countMalformed() {
    MalformedFrames.fetch_add(1, std::memory_order_relaxed);
  }
  void countBusy() {
    BusyRejections.fetch_add(1, std::memory_order_relaxed);
  }
  void countTimeout() { Timeouts.fetch_add(1, std::memory_order_relaxed); }
  void countError() { Errors.fetch_add(1, std::memory_order_relaxed); }

  /// Tracks the deepest the request queue has been.
  void noteQueueDepth(uint64_t Depth) {
    uint64_t Prev = QueueHighWater.load(std::memory_order_relaxed);
    while (Prev < Depth && !QueueHighWater.compare_exchange_weak(
                               Prev, Depth, std::memory_order_relaxed))
      ;
  }

  void recordLatency(uint64_t Micros) { Latency.record(Micros); }

  /// Transport-level connection accounting (epoll dispatcher).
  void countConnAccepted() {
    ConnsAccepted.fetch_add(1, std::memory_order_relaxed);
  }
  void countConnClosed() {
    ConnsClosed.fetch_add(1, std::memory_order_relaxed);
  }
  /// Tracks the most connections ever open at once.
  void noteActiveConns(uint64_t Count) {
    uint64_t Prev = ConnHighWater.load(std::memory_order_relaxed);
    while (Prev < Count && !ConnHighWater.compare_exchange_weak(
                               Prev, Count, std::memory_order_relaxed))
      ;
  }
  void countIdleDisconnect() {
    IdleDisconnects.fetch_add(1, std::memory_order_relaxed);
  }
  /// A peer stopped reading and its bounded write queue overflowed; the
  /// transport disconnected it instead of buffering without bound.
  void countWriteOverflow() {
    WriteOverflows.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t connsAccepted() const {
    return ConnsAccepted.load(std::memory_order_relaxed);
  }
  uint64_t connsClosed() const {
    return ConnsClosed.load(std::memory_order_relaxed);
  }
  uint64_t connHighWater() const {
    return ConnHighWater.load(std::memory_order_relaxed);
  }
  uint64_t idleDisconnects() const {
    return IdleDisconnects.load(std::memory_order_relaxed);
  }
  uint64_t writeOverflows() const {
    return WriteOverflows.load(std::memory_order_relaxed);
  }

  /// Streaming-ingest accounting (live attach).
  void countSectionIngested(uint64_t Bytes) {
    SectionsIngested.fetch_add(1, std::memory_order_relaxed);
    BytesIngested.fetch_add(Bytes, std::memory_order_relaxed);
  }
  /// Tracer-reported cumulative credit stalls; monotone per stream, so
  /// the metric stores the running max contribution via a plain add of
  /// the delta computed by the ingest session.
  void countCreditStalls(uint64_t Delta) {
    CreditStalls.fetch_add(Delta, std::memory_order_relaxed);
  }
  /// Tracks the deepest any ingest session's staged-cut queue has been.
  void noteIngestQueueDepth(uint64_t Depth) {
    uint64_t Prev = IngestQueueHighWater.load(std::memory_order_relaxed);
    while (Prev < Depth &&
           !IngestQueueHighWater.compare_exchange_weak(
               Prev, Depth, std::memory_order_relaxed))
      ;
  }

  uint64_t sectionsIngested() const {
    return SectionsIngested.load(std::memory_order_relaxed);
  }
  uint64_t bytesIngested() const {
    return BytesIngested.load(std::memory_order_relaxed);
  }
  uint64_t creditStalls() const {
    return CreditStalls.load(std::memory_order_relaxed);
  }
  uint64_t ingestQueueDepth() const {
    return IngestQueueHighWater.load(std::memory_order_relaxed);
  }

  uint64_t requests(MsgType Type) const {
    return Requests[unsigned(Type) % NumTypes].load(
        std::memory_order_relaxed);
  }
  uint64_t totalRequests() const {
    uint64_t N = 0;
    for (const auto &C : Requests)
      N += C.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t malformedFrames() const {
    return MalformedFrames.load(std::memory_order_relaxed);
  }
  uint64_t busyRejections() const {
    return BusyRejections.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const {
    return Timeouts.load(std::memory_order_relaxed);
  }
  uint64_t queueHighWater() const {
    return QueueHighWater.load(std::memory_order_relaxed);
  }
  const LatencyHistogram &latency() const { return Latency; }

  /// The --metrics-dump / server-level `stats` text. \p ReplayLines is
  /// the renderReplayServiceStats() output aggregated over programs.
  std::string render(const std::string &ReplayLines) const {
    static const char *Names[NumTypes] = {
        nullptr,   "open",  "query",    "step",
        "races",   "stats", "close",    "shutdown",
        "hello",   "section", "streamend", "tail", "frontier"};
    std::string Out = "server: requests " +
                      std::to_string(totalRequests()) + ", malformed " +
                      std::to_string(malformedFrames()) + ", busy " +
                      std::to_string(busyRejections()) + ", timeouts " +
                      std::to_string(timeouts()) + ", errors " +
                      std::to_string(Errors.load(std::memory_order_relaxed)) +
                      ", queue high-water " +
                      std::to_string(queueHighWater()) + "\n";
    Out += "requests by type:";
    for (unsigned I = 1; I != NumTypes; ++I)
      Out += std::string(" ") + Names[I] + " " +
             std::to_string(Requests[I].load(std::memory_order_relaxed));
    Out += "\n";
    Out += "transport: accepted " + std::to_string(connsAccepted()) +
           ", closed " + std::to_string(connsClosed()) + ", peak " +
           std::to_string(connHighWater()) + ", idle-drops " +
           std::to_string(idleDisconnects()) + ", write-overflows " +
           std::to_string(writeOverflows()) + "\n";
    Out += "ingest: sections " + std::to_string(sectionsIngested()) +
           ", bytes " + std::to_string(bytesIngested()) +
           ", credit stalls " + std::to_string(creditStalls()) +
           ", queue high-water " + std::to_string(ingestQueueDepth()) +
           "\n";
    Out += "latency: count " + std::to_string(Latency.count()) +
           ", mean " + std::to_string(Latency.meanMicros()) + "us, p50 <" +
           std::to_string(Latency.percentileMicros(50)) + "us, p99 <" +
           std::to_string(Latency.percentileMicros(99)) + "us\n";
    Out += ReplayLines;
    return Out;
  }

private:
  std::array<std::atomic<uint64_t>, NumTypes> Requests{};
  std::atomic<uint64_t> MalformedFrames{0};
  std::atomic<uint64_t> BusyRejections{0};
  std::atomic<uint64_t> Timeouts{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> QueueHighWater{0};
  std::atomic<uint64_t> ConnsAccepted{0};
  std::atomic<uint64_t> ConnsClosed{0};
  std::atomic<uint64_t> ConnHighWater{0};
  std::atomic<uint64_t> IdleDisconnects{0};
  std::atomic<uint64_t> WriteOverflows{0};
  std::atomic<uint64_t> SectionsIngested{0};
  std::atomic<uint64_t> BytesIngested{0};
  std::atomic<uint64_t> CreditStalls{0};
  std::atomic<uint64_t> IngestQueueHighWater{0};
  LatencyHistogram Latency;
};

} // namespace ppd

#endif // PPD_SERVER_SERVERMETRICS_H
