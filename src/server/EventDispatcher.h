//===- server/EventDispatcher.h - epoll reactor + timer wheel ---*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-threaded readiness loop: epoll over registered fds, a hashed
/// timer wheel for coarse timeouts (idle connections, deadlines), and an
/// eventfd-backed post() so other threads — scheduler workers finishing a
/// request, a shutdown hook — can hand work to the loop thread without
/// locks on the fd paths. Everything except post() and stop() must be
/// called from the loop thread.
///
/// The wheel is 256 slots of 10 ms ticks (2.56 s per rotation; longer
/// delays carry a rounds counter), so arming and cancelling a timer is
/// O(1) and firing a tick touches only its slot. Granularity is
/// deliberately coarse: these are liveness timeouts, not schedulers.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SERVER_EVENTDISPATCHER_H
#define PPD_SERVER_EVENTDISPATCHER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ppd {

class EventDispatcher {
public:
  /// Receives the epoll event mask (EPOLLIN | EPOLLOUT | ...). The
  /// handler may remove its own fd (or any other) — dispatch copies the
  /// callable before invoking it.
  using FdHandler = std::function<void(uint32_t Events)>;
  using TimerId = uint64_t;

  EventDispatcher();
  ~EventDispatcher();
  EventDispatcher(const EventDispatcher &) = delete;
  EventDispatcher &operator=(const EventDispatcher &) = delete;

  /// False when epoll/eventfd creation failed at construction.
  bool valid() const { return EpollFd >= 0 && WakeFd >= 0; }

  /// Registers \p Fd for \p Events (level-triggered). The fd stays owned
  /// by the caller; remove() before closing it.
  bool add(int Fd, uint32_t Events, FdHandler Handler);
  /// Changes the interest mask of an already-added fd.
  bool modify(int Fd, uint32_t Events);
  /// Unregisters the fd. Does not close it.
  void remove(int Fd);

  /// One-shot timer after roughly \p DelayMs (tick granularity). Returns
  /// an id for cancelTimer. Fires on the loop thread.
  TimerId addTimer(uint64_t DelayMs, std::function<void()> Fn);
  void cancelTimer(TimerId Id);

  /// Thread-safe: queues \p Task for the loop thread and wakes it.
  void post(std::function<void()> Task);
  /// Drains queued posts now. Loop thread only; run() calls this on every
  /// wakeup, the transport calls it once more after the loop exits.
  void runPosted();

  /// Dispatches until stop(). Returns false if the loop could not start
  /// (invalid dispatcher).
  bool run();
  /// Thread-safe: makes run() return after the current dispatch round.
  void stop();
  bool stopped() const { return StopFlag.load(std::memory_order_acquire); }

  /// Monotonic milliseconds (steady clock); cached per dispatch round on
  /// the loop thread but safe to call anywhere.
  static uint64_t nowMs();

private:
  static constexpr unsigned NumSlots = 256;
  static constexpr uint64_t TickMs = 10;

  struct TimerEntry {
    TimerId Id = 0;
    uint64_t Rounds = 0; ///< full wheel rotations still to wait.
    std::function<void()> Fn;
  };

  void advanceTimers();
  int pollTimeoutMs() const;

  int EpollFd = -1;
  int WakeFd = -1;
  std::unordered_map<int, FdHandler> Handlers;

  std::vector<std::vector<TimerEntry>> Wheel{NumSlots};
  size_t CurSlot = 0;
  uint64_t LastTickMs = 0;
  size_t ActiveTimers = 0;
  std::unordered_set<TimerId> Cancelled;
  TimerId NextTimerId = 1;

  std::atomic<bool> StopFlag{false};
  std::mutex PostedMutex;
  std::vector<std::function<void()>> Posted;
};

} // namespace ppd

#endif // PPD_SERVER_EVENTDISPATCHER_H
