//===- server/EventDispatcher.cpp -----------------------------------------===//
//
// Part of PPD. See EventDispatcher.h.
//
//===----------------------------------------------------------------------===//

#include "server/EventDispatcher.h"

#include <cerrno>
#include <chrono>
#include <cstdio>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

using namespace ppd;

EventDispatcher::EventDispatcher() {
  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (EpollFd < 0 || WakeFd < 0) {
    std::perror("epoll_create1/eventfd");
    return;
  }
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = WakeFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) < 0) {
    std::perror("epoll_ctl(wakeup)");
    ::close(EpollFd);
    EpollFd = -1;
  }
}

EventDispatcher::~EventDispatcher() {
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
}

uint64_t EventDispatcher::nowMs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

bool EventDispatcher::add(int Fd, uint32_t Events, FdHandler Handler) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0)
    return false;
  Handlers[Fd] = std::move(Handler);
  return true;
}

bool EventDispatcher::modify(int Fd, uint32_t Events) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  return ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev) == 0;
}

void EventDispatcher::remove(int Fd) {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  Handlers.erase(Fd);
}

EventDispatcher::TimerId EventDispatcher::addTimer(uint64_t DelayMs,
                                                   std::function<void()> Fn) {
  uint64_t Ticks = DelayMs / TickMs;
  if (Ticks == 0)
    Ticks = 1;
  TimerEntry E;
  E.Id = NextTimerId++;
  E.Rounds = Ticks / NumSlots;
  E.Fn = std::move(Fn);
  TimerId Id = E.Id;
  Wheel[(CurSlot + size_t(Ticks)) % NumSlots].push_back(std::move(E));
  ++ActiveTimers;
  return Id;
}

void EventDispatcher::cancelTimer(TimerId Id) {
  // Lazy cancellation: the entry stays in its slot and is discarded when
  // the wheel reaches it. ActiveTimers counts live timers only, so an
  // all-cancelled wheel still lets epoll block indefinitely.
  if (Cancelled.insert(Id).second && ActiveTimers != 0)
    --ActiveTimers;
}

void EventDispatcher::post(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(PostedMutex);
    Posted.push_back(std::move(Task));
  }
  uint64_t One = 1;
  // The eventfd counter saturates rather than blocks under EFD_NONBLOCK;
  // a failed write means the loop is already due to wake.
  (void)!::write(WakeFd, &One, sizeof(One));
}

void EventDispatcher::runPosted() {
  std::vector<std::function<void()>> Batch;
  {
    std::lock_guard<std::mutex> Lock(PostedMutex);
    Batch.swap(Posted);
  }
  for (auto &Task : Batch)
    Task();
}

void EventDispatcher::advanceTimers() {
  uint64_t Now = nowMs();
  std::vector<std::function<void()>> Due;
  while (LastTickMs + TickMs <= Now) {
    LastTickMs += TickMs;
    CurSlot = (CurSlot + 1) % NumSlots;
    auto &Slot = Wheel[CurSlot];
    size_t Keep = 0;
    for (size_t I = 0; I != Slot.size(); ++I) {
      TimerEntry &E = Slot[I];
      auto It = Cancelled.find(E.Id);
      if (It != Cancelled.end()) {
        Cancelled.erase(It);
        continue;
      }
      if (E.Rounds != 0) {
        --E.Rounds;
        Slot[Keep++] = std::move(E);
        continue;
      }
      --ActiveTimers;
      Due.push_back(std::move(E.Fn));
    }
    Slot.resize(Keep);
  }
  // Fire outside the slot walk: a callback may re-arm into any slot,
  // including the one just compacted.
  for (auto &Fn : Due)
    Fn();
}

int EventDispatcher::pollTimeoutMs() const {
  if (ActiveTimers == 0)
    return -1; // nothing timed; posts and stop() wake via the eventfd.
  uint64_t Now = nowMs();
  uint64_t NextTick = LastTickMs + TickMs;
  return NextTick > Now ? int(NextTick - Now) : 0;
}

bool EventDispatcher::run() {
  if (!valid())
    return false;
  LastTickMs = nowMs();
  epoll_event Events[256];
  while (!StopFlag.load(std::memory_order_acquire)) {
    int N = ::epoll_wait(EpollFd, Events, 256, pollTimeoutMs());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::perror("epoll_wait");
      return false;
    }
    for (int I = 0; I != N; ++I) {
      int Fd = Events[I].data.fd;
      if (Fd == WakeFd) {
        uint64_t Drained = 0;
        (void)!::read(WakeFd, &Drained, sizeof(Drained));
        runPosted();
        continue;
      }
      auto It = Handlers.find(Fd);
      if (It == Handlers.end())
        continue; // removed earlier in this batch.
      FdHandler Handler = It->second; // copy: the handler may remove(Fd).
      Handler(Events[I].events);
    }
    advanceTimers();
  }
  return true;
}

void EventDispatcher::stop() {
  StopFlag.store(true, std::memory_order_release);
  uint64_t One = 1;
  (void)!::write(WakeFd, &One, sizeof(One));
}
