//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic SplitMix64 generator. The VM scheduler uses
/// it to model the non-deterministic interleavings of a shared-memory
/// multiprocessor: a fixed seed reproduces one "execution instance" of the
/// paper exactly, different seeds exercise different interleavings. Nothing
/// in PPD consults wall-clock randomness.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_RNG_H
#define PPD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ppd {

/// SplitMix64: tiny, fast, and good enough for scheduling decisions.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  ///
  /// Rejection sampling: a plain `next() % Bound` over-weights the low
  /// residues whenever 2^64 is not a multiple of Bound. The bias is tiny
  /// for scheduler-sized bounds but a uniformity claim should be exact;
  /// values below `2^64 mod Bound` are redrawn (for Bound < 2^32 a redraw
  /// happens less than once per 2^32 calls).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    uint64_t Threshold = -Bound % Bound; // == 2^64 mod Bound
    uint64_t V = next();
    while (V < Threshold)
      V = next();
    return V % Bound;
  }

  /// Uniform value in [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo) + 1));
  }

private:
  uint64_t State;
};

} // namespace ppd

#endif // PPD_SUPPORT_RNG_H
