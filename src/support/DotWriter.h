//===- support/DotWriter.h - Graphviz emission helper -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny helper for emitting Graphviz DOT text. The paper's debugger is
/// fundamentally graphical (Figs 4.1, 5.3, 6.1 are all graphs shown to the
/// user); every graph structure in PPD can render itself through this
/// writer so the examples can regenerate the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_DOTWRITER_H
#define PPD_SUPPORT_DOTWRITER_H

#include <string>
#include <vector>

namespace ppd {

/// Accumulates a DOT digraph. Node and edge attributes are passed as
/// preformatted `key=value` strings (quoting of labels is handled here).
class DotWriter {
public:
  explicit DotWriter(std::string GraphName);

  /// Escapes text for use inside a double-quoted DOT string.
  static std::string escape(const std::string &Text);

  /// Adds a node with label \p Label and optional extra attributes such as
  /// "shape=box" or "style=dashed".
  void node(const std::string &Id, const std::string &Label,
            const std::vector<std::string> &Attrs = {});

  /// Adds a directed edge From -> To.
  void edge(const std::string &From, const std::string &To,
            const std::vector<std::string> &Attrs = {});

  /// Opens a cluster subgraph (e.g. one per process in the parallel dynamic
  /// graph). Nodes added before endCluster() belong to it.
  void beginCluster(const std::string &Id, const std::string &Label);
  void endCluster();

  /// Adds a raw line verbatim (rank constraints etc.).
  void raw(const std::string &Line);

  /// Final DOT text.
  std::string str() const;

private:
  std::string Name;
  std::string Body;
  unsigned Indent = 1;

  void line(const std::string &Text);
};

} // namespace ppd

#endif // PPD_SUPPORT_DOTWRITER_H
