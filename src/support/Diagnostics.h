//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the PPL front end and the semantic
/// analyses. Diagnostics are collected (never thrown); callers inspect
/// hasErrors() after each phase. Messages follow the LLVM style: lower-case
/// first letter, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_DIAGNOSTICS_H
#define PPD_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace ppd {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics emitted while processing one compilation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Concatenates all diagnostics, one per line. Handy in tests and tools.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ppd

#endif // PPD_SUPPORT_DIAGNOSTICS_H
