//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of PPD. See ThreadPool.h.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

namespace ppd {

thread_local const ThreadPool *ThreadPool::CurrentPool = nullptr;
thread_local unsigned ThreadPool::CurrentWorker = 0;

} // namespace ppd
