//===- support/SmallVec.h - Small-size-optimized vector ---------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SmallVec<T, N>: a vector with inline storage for N elements that only
/// touches the heap when it grows past N. The execution-phase log is built
/// from millions of tiny element sequences (captured variable values,
/// per-edge READ/WRITE sets); with std::vector each of them is a separate
/// heap allocation on the latency-critical emit path. Almost all of them
/// fit a handful of elements, so inline storage removes the allocator from
/// the execution phase entirely for typical programs (the paper's <15%
/// overhead bound, §7).
///
/// Deliberately minimal: exactly the std::vector surface the log layer
/// uses (push_back/emplace_back, assign, resize, reserve, iteration,
/// indexing, comparison). Grows geometrically once spilled.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_SMALLVEC_H
#define PPD_SUPPORT_SMALLVEC_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ppd {

template <typename T, unsigned N> class SmallVec {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> Init) { assign(Init.begin(), Init.end()); }

  SmallVec(const SmallVec &Other) { assign(Other.begin(), Other.end()); }

  SmallVec(SmallVec &&Other) noexcept { moveFrom(std::move(Other)); }

  SmallVec &operator=(const SmallVec &Other) {
    if (this != &Other)
      assign(Other.begin(), Other.end());
    return *this;
  }

  SmallVec &operator=(SmallVec &&Other) noexcept {
    if (this != &Other) {
      destroyAll();
      moveFrom(std::move(Other));
    }
    return *this;
  }

  ~SmallVec() { destroyAll(); }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Capacity; }

  T &operator[](size_t I) {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  T &back() {
    assert(Size && "back of empty SmallVec");
    return Data[Size - 1];
  }
  const T &back() const {
    assert(Size && "back of empty SmallVec");
    return Data[Size - 1];
  }
  T &front() {
    assert(Size && "front of empty SmallVec");
    return Data[0];
  }
  const T &front() const {
    assert(Size && "front of empty SmallVec");
    return Data[0];
  }

  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Size == Capacity)
      grow(Size + 1);
    ::new (static_cast<void *>(Data + Size)) T(std::forward<Args>(A)...);
    return Data[Size++];
  }

  void pop_back() {
    assert(Size && "pop of empty SmallVec");
    Data[--Size].~T();
  }

  void clear() {
    for (size_t I = 0; I != Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  void reserve(size_t Cap) {
    if (Cap > Capacity)
      grow(Cap);
  }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      for (size_t I = NewSize; I != Size; ++I)
        Data[I].~T();
    } else {
      reserve(NewSize);
      for (size_t I = Size; I != NewSize; ++I)
        ::new (static_cast<void *>(Data + I)) T();
    }
    Size = NewSize;
  }

  template <typename It> void assign(It First, It Last) {
    clear();
    reserve(size_t(std::distance(First, Last)));
    for (; First != Last; ++First)
      emplace_back(*First);
  }

  friend bool operator==(const SmallVec &A, const SmallVec &B) {
    return std::equal(A.begin(), A.end(), B.begin(), B.end());
  }
  friend bool operator!=(const SmallVec &A, const SmallVec &B) {
    return !(A == B);
  }
  friend bool operator==(const SmallVec &A, const std::vector<T> &B) {
    return std::equal(A.begin(), A.end(), B.begin(), B.end());
  }
  friend bool operator==(const std::vector<T> &A, const SmallVec &B) {
    return B == A;
  }

private:
  bool isInline() const {
    return Data == reinterpret_cast<const T *>(Inline);
  }

  void grow(size_t MinCap) {
    size_t NewCap = std::max(MinCap, size_t(Capacity) * 2);
    T *NewData = static_cast<T *>(
        ::operator new(NewCap * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t I = 0; I != Size; ++I) {
      ::new (static_cast<void *>(NewData + I)) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (!isInline())
      ::operator delete(Data, std::align_val_t(alignof(T)));
    Data = NewData;
    Capacity = NewCap;
  }

  void destroyAll() {
    clear();
    if (!isInline())
      ::operator delete(Data, std::align_val_t(alignof(T)));
    Data = reinterpret_cast<T *>(Inline);
    Capacity = N;
  }

  /// Steals \p Other's heap buffer, or moves its inline elements. Leaves
  /// *this fully formed and \p Other empty.
  void moveFrom(SmallVec &&Other) {
    if (Other.isInline()) {
      Data = reinterpret_cast<T *>(Inline);
      Capacity = N;
      Size = 0;
      for (size_t I = 0; I != Other.Size; ++I)
        ::new (static_cast<void *>(Data + I)) T(std::move(Other.Data[I]));
      Size = Other.Size;
      Other.clear();
    } else {
      Data = Other.Data;
      Size = Other.Size;
      Capacity = Other.Capacity;
      Other.Data = reinterpret_cast<T *>(Other.Inline);
      Other.Size = 0;
      Other.Capacity = N;
    }
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Data = reinterpret_cast<T *>(Inline);
  uint32_t Size = 0;
  uint32_t Capacity = N;
};

} // namespace ppd

#endif // PPD_SUPPORT_SMALLVEC_H
