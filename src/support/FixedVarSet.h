//===- support/FixedVarSet.h - Flat-arena fixed-universe sets ---*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third variable-set representation next to BitVarSet and ListVarSet
/// (VarSet.h): a *fixed-universe* bit set whose words live in one
/// contiguous arena shared by every set of a family. The vectorized race
/// detector stores all per-edge READ/WRITE sets and all happens-before
/// closure rows this way, so the sweep's inner loops stream over one flat
/// buffer — no per-set std::vector header chasing, no grow-on-demand
/// branches, and every row is the same width, which is what lets the
/// simd::* kernels (Simd.h) run without per-element bounds logic.
///
/// A VarSetArena owns the words; a FixedVarSet is a cheap handle
/// (pointer + width) into it. Handles stay valid for the arena's lifetime
/// — the arena allocates its entire buffer up front and never reallocates.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_FIXEDVARSET_H
#define PPD_SUPPORT_FIXEDVARSET_H

#include "support/Simd.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ppd {

/// A view over one fixed-width row of set words. All binary operations
/// require operands of the same universe (asserted); the race detector
/// only ever combines rows of one arena family.
class FixedVarSet {
public:
  FixedVarSet() = default;
  FixedVarSet(uint64_t *Words, uint32_t NumWords)
      : Words(Words), NumWords(NumWords) {}

  bool valid() const { return Words != nullptr; }
  uint32_t numWords() const { return NumWords; }
  const uint64_t *words() const { return Words; }
  uint64_t *words() { return Words; }

  bool insert(unsigned Id) {
    assert(Id / 64 < NumWords && "id outside the fixed universe");
    uint64_t Mask = uint64_t(1) << (Id % 64);
    uint64_t &Word = Words[Id / 64];
    if (Word & Mask)
      return false;
    Word |= Mask;
    return true;
  }

  bool contains(unsigned Id) const {
    if (Id / 64 >= NumWords)
      return false;
    return (Words[Id / 64] >> (Id % 64)) & 1;
  }

  bool remove(unsigned Id) {
    if (Id / 64 >= NumWords)
      return false;
    uint64_t Mask = uint64_t(1) << (Id % 64);
    uint64_t &Word = Words[Id / 64];
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    return true;
  }

  bool intersects(const FixedVarSet &Other) const {
    assert(NumWords == Other.NumWords);
    return simd::intersectsNonEmpty(Words, Other.Words, NumWords);
  }

  /// this = A ∩ B, the scratch-filling form the sweep uses.
  void assignIntersection(const FixedVarSet &A, const FixedVarSet &B) {
    assert(NumWords == A.NumWords && NumWords == B.NumWords);
    simd::intersectInto(Words, A.Words, B.Words, NumWords);
  }

  void unionWith(const FixedVarSet &Other) {
    assert(NumWords == Other.NumWords);
    simd::orInto(Words, Other.Words, NumWords);
  }

  unsigned size() const {
    return unsigned(simd::popcountWords(Words, NumWords));
  }

  bool empty() const {
    for (uint32_t I = 0; I != NumWords; ++I)
      if (Words[I])
        return false;
    return true;
  }

  void clear() { std::fill_n(Words, NumWords, uint64_t(0)); }

  /// Sets every bit in [First, Last] — the word-wide fill the closure
  /// construction uses for its per-process simultaneity intervals.
  void insertRange(unsigned First, unsigned Last) {
    if (First > Last)
      return;
    assert(Last / 64 < NumWords && "range outside the fixed universe");
    uint32_t FirstWord = First / 64, LastWord = Last / 64;
    uint64_t FirstMask = ~uint64_t(0) << (First % 64);
    uint64_t LastMask = ~uint64_t(0) >> (63 - Last % 64);
    if (FirstWord == LastWord) {
      Words[FirstWord] |= FirstMask & LastMask;
      return;
    }
    Words[FirstWord] |= FirstMask;
    for (uint32_t W = FirstWord + 1; W != LastWord; ++W)
      Words[W] = ~uint64_t(0);
    Words[LastWord] |= LastMask;
  }

  /// As forEach, but only elements >= \p Start — the sweep enumerates
  /// conflict partners above the current writer's id this way, so each
  /// unordered pair is visited exactly once without a dedup set.
  template <typename Fn> void forEachFrom(unsigned Start, Fn &&Callback) const {
    uint32_t FirstWord = Start / 64;
    if (FirstWord >= NumWords)
      return;
    uint64_t First = Words[FirstWord] & (~uint64_t(0) << (Start % 64));
    for (uint32_t I = FirstWord; I != NumWords; ++I) {
      uint64_t Word = I == FirstWord ? First : Words[I];
      while (Word) {
        unsigned Bit = std::countr_zero(Word);
        Callback(unsigned(I) * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  /// Calls \p Callback for each element in increasing order.
  template <typename Fn> void forEach(Fn &&Callback) const {
    for (uint32_t I = 0; I != NumWords; ++I) {
      uint64_t Word = Words[I];
      while (Word) {
        unsigned Bit = std::countr_zero(Word);
        Callback(unsigned(I) * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  std::vector<unsigned> toVector() const {
    std::vector<unsigned> Out;
    Out.reserve(size());
    forEach([&Out](unsigned Id) { Out.push_back(Id); });
    return Out;
  }

  friend bool operator==(const FixedVarSet &A, const FixedVarSet &B) {
    assert(A.NumWords == B.NumWords);
    return std::equal(A.Words, A.Words + A.NumWords, B.Words);
  }

private:
  uint64_t *Words = nullptr;
  uint32_t NumWords = 0;
};

/// Owns the contiguous buffer behind a family of same-universe
/// FixedVarSets: Rows × ceil(Universe/64) words, zero-initialized, laid
/// out row-major so row i's words directly follow row i-1's.
class VarSetArena {
public:
  VarSetArena() = default;
  VarSetArena(uint32_t Rows, uint32_t Universe)
      : WordsPerRow(std::max<uint32_t>(1, (Universe + 63) / 64)),
        NumRows(Rows), Buffer(size_t(WordsPerRow) * Rows, 0) {}

  uint32_t numRows() const { return NumRows; }
  uint32_t wordsPerRow() const { return WordsPerRow; }

  FixedVarSet row(uint32_t Index) {
    assert(Index < NumRows);
    return FixedVarSet(Buffer.data() + size_t(Index) * WordsPerRow,
                       WordsPerRow);
  }
  const FixedVarSet row(uint32_t Index) const {
    assert(Index < NumRows);
    return FixedVarSet(const_cast<uint64_t *>(Buffer.data()) +
                           size_t(Index) * WordsPerRow,
                       WordsPerRow);
  }

  /// Total buffer footprint, for the bench counters.
  size_t bytes() const { return Buffer.size() * sizeof(uint64_t); }

private:
  uint32_t WordsPerRow = 0;
  uint32_t NumRows = 0;
  std::vector<uint64_t> Buffer;
};

} // namespace ppd

#endif // PPD_SUPPORT_FIXEDVARSET_H
