//===- support/ExecMem.cpp - W^X executable-memory arena ------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//

#include "support/ExecMem.h"

#if PPD_EXECMEM_SUPPORTED
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace ppd {

namespace {

size_t pageSize() {
#if PPD_EXECMEM_SUPPORTED
  static const size_t Size = [] {
    long Page = sysconf(_SC_PAGESIZE);
    return Page > 0 ? size_t(Page) : size_t(4096);
  }();
  return Size;
#else
  return 4096;
#endif
}

} // namespace

ExecMemArena::ExecMemArena(size_t BudgetBytes) : Budget(BudgetBytes) {}

ExecMemArena::~ExecMemArena() {
#if PPD_EXECMEM_SUPPORTED
  for (auto &B : Blocks)
    if (B->Data)
      ::munmap(B->Data, B->Size);
#endif
}

ExecMemArena::Block *ExecMemArena::allocate(size_t Bytes) {
  if (!supported() || Bytes == 0)
    return nullptr;
  size_t Page = pageSize();
  size_t Rounded = (Bytes + Page - 1) / Page * Page;

  std::lock_guard<std::mutex> Lock(Mutex);

  // Smallest released block that fits; reusing keeps a recompiling session
  // at a bounded footprint instead of growing the mapping set forever.
  auto It = FreeList.lower_bound(Rounded);
  if (It != FreeList.end()) {
    Block *B = It->second;
    FreeList.erase(It);
    if (!B->Writable) {
#if PPD_EXECMEM_SUPPORTED
      if (::mprotect(B->Data, B->Size, PROT_READ | PROT_WRITE) != 0) {
        FreeList.emplace(B->Size, B);
        return nullptr;
      }
#endif
      B->Writable = true;
    }
    return B;
  }

  if (Reserved + Rounded > Budget)
    return nullptr;

#if PPD_EXECMEM_SUPPORTED
  void *Mem = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  auto Owned = std::make_unique<Block>();
  Owned->Data = static_cast<uint8_t *>(Mem);
  Owned->Size = Rounded;
  Owned->Writable = true;
  Block *B = Owned.get();
  Blocks.push_back(std::move(Owned));
  Reserved += Rounded;
  return B;
#else
  return nullptr;
#endif
}

bool ExecMemArena::makeExecutable(Block &B) {
#if PPD_EXECMEM_SUPPORTED
  if (!B.Data || !B.Writable)
    return false;
  if (::mprotect(B.Data, B.Size, PROT_READ | PROT_EXEC) != 0)
    return false;
  B.Writable = false;
  return true;
#else
  (void)B;
  return false;
#endif
}

bool ExecMemArena::makeWritable(Block &B) {
#if PPD_EXECMEM_SUPPORTED
  if (!B.Data || B.Writable)
    return false;
  if (::mprotect(B.Data, B.Size, PROT_READ | PROT_WRITE) != 0)
    return false;
  B.Writable = true;
  return true;
#else
  (void)B;
  return false;
#endif
}

void ExecMemArena::release(Block *B) {
  if (!B)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  FreeList.emplace(B->Size, B);
}

size_t ExecMemArena::bytesReserved() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reserved;
}

} // namespace ppd
