//===- support/ExecMem.h - W^X executable-memory arena ----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Page-granular executable memory for the replay JIT (vm/Jit.cpp), with
/// strict W^X discipline: a block is mapped read+write while code is being
/// emitted into it, flipped to read+execute before the first call, and
/// must be flipped back before any patching. No mapping is ever writable
/// and executable at the same time.
///
/// The arena hands out whole-page blocks (one per compiled function; code
/// for a function is immutable once published, so there is no benefit to
/// packing functions into shared pages and a hard correctness cost — a
/// W^X flip on a shared page would yank execute from code another thread
/// is running). Released blocks go to a size-keyed free list and are
/// reused by later allocations, so a session that recompiles churns pages
/// instead of leaking address space. A byte budget bounds the total
/// mapped; allocate() returns null once it would be exceeded, which the
/// JIT treats as a compile failure and falls back to the decoded tier.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_EXECMEM_H
#define PPD_SUPPORT_EXECMEM_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define PPD_EXECMEM_SUPPORTED 1
#else
#define PPD_EXECMEM_SUPPORTED 0
#endif

namespace ppd {

class ExecMemArena {
public:
  /// One page-rounded code block. Data/Size cover the usable (mapped)
  /// range; Writable tracks which side of the W^X flip it is on.
  struct Block {
    uint8_t *Data = nullptr;
    size_t Size = 0;
    bool Writable = true;
  };

  explicit ExecMemArena(size_t BudgetBytes = DefaultBudget);
  ~ExecMemArena();
  ExecMemArena(const ExecMemArena &) = delete;
  ExecMemArena &operator=(const ExecMemArena &) = delete;

  /// False on platforms without mmap/mprotect; every allocate() returns
  /// null there and the JIT tier silently disables itself.
  static bool supported() { return PPD_EXECMEM_SUPPORTED != 0; }

  /// A read+write block of at least \p Bytes (page-rounded), reusing a
  /// released block when one is large enough. Null when unsupported, when
  /// \p Bytes is zero, or when mapping it would exceed the byte budget.
  Block *allocate(size_t Bytes);

  /// Flips RW -> RX. The block must currently be writable.
  bool makeExecutable(Block &B);
  /// Flips RX -> RW for patching. The block must not be executing.
  bool makeWritable(Block &B);

  /// Returns the block's pages to the free list for reuse. The pages stay
  /// mapped (and counted against the budget) until the arena dies.
  void release(Block *B);

  /// Total bytes currently mapped, live blocks and free list together.
  size_t bytesReserved() const;
  size_t budget() const { return Budget; }

  static constexpr size_t DefaultBudget = size_t(8) << 20;

private:
  size_t Budget;
  mutable std::mutex Mutex;
  size_t Reserved = 0;
  std::vector<std::unique_ptr<Block>> Blocks;
  /// Released blocks keyed by size, smallest-fit reuse.
  std::multimap<size_t, Block *> FreeList;
};

} // namespace ppd

#endif // PPD_SUPPORT_EXECMEM_H
