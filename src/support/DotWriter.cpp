//===- support/DotWriter.cpp ----------------------------------------------===//
//
// Part of PPD. See DotWriter.h.
//
//===----------------------------------------------------------------------===//

#include "support/DotWriter.h"

using namespace ppd;

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

std::string DotWriter::escape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void DotWriter::line(const std::string &Text) {
  Body.append(Indent * 2, ' ');
  Body += Text;
  Body += '\n';
}

void DotWriter::node(const std::string &Id, const std::string &Label,
                     const std::vector<std::string> &Attrs) {
  std::string Text = "\"" + escape(Id) + "\" [label=\"" + escape(Label) + "\"";
  for (const std::string &A : Attrs) {
    Text += ", ";
    Text += A;
  }
  Text += "];";
  line(Text);
}

void DotWriter::edge(const std::string &From, const std::string &To,
                     const std::vector<std::string> &Attrs) {
  std::string Text = "\"" + escape(From) + "\" -> \"" + escape(To) + "\"";
  if (!Attrs.empty()) {
    Text += " [";
    for (size_t I = 0; I != Attrs.size(); ++I) {
      if (I)
        Text += ", ";
      Text += Attrs[I];
    }
    Text += "]";
  }
  Text += ";";
  line(Text);
}

void DotWriter::beginCluster(const std::string &Id, const std::string &Label) {
  line("subgraph \"cluster_" + escape(Id) + "\" {");
  ++Indent;
  line("label=\"" + escape(Label) + "\";");
}

void DotWriter::endCluster() {
  --Indent;
  line("}");
}

void DotWriter::raw(const std::string &Line) { line(Line); }

std::string DotWriter::str() const {
  return "digraph \"" + escape(Name) + "\" {\n" + Body + "}\n";
}
