//===- support/SourceLoc.cpp ----------------------------------------------===//
//
// Part of PPD. See SourceLoc.h.
//
//===----------------------------------------------------------------------===//

#include "support/SourceLoc.h"

using namespace ppd;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<invalid>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string SourceRange::str() const {
  if (!isValid())
    return "<invalid>";
  return Begin.str() + "-" + End.str();
}
