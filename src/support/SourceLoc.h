//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi, "A Mechanism for Efficient
// Debugging of Parallel Programs" (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types describing positions and ranges in PPL source
/// text. Every AST node, diagnostic, program-database entry and dependence
/// graph node carries a SourceLoc so that the debugger can always point the
/// user back at program text (a requirement the paper states in §7).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_SOURCELOC_H
#define PPD_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace ppd {

/// A (line, column) position in a source buffer. Lines and columns are
/// 1-based; a default-constructed SourceLoc is invalid.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend constexpr bool operator!=(SourceLoc A, SourceLoc B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }

  /// Renders as "line:col", or "<invalid>" for the sentinel.
  std::string str() const;
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  constexpr SourceRange() = default;
  constexpr SourceRange(SourceLoc Begin, SourceLoc End)
      : Begin(Begin), End(End) {}
  explicit constexpr SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  constexpr bool isValid() const { return Begin.isValid(); }

  std::string str() const;
};

} // namespace ppd

#endif // PPD_SUPPORT_SOURCELOC_H
