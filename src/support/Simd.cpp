//===- support/Simd.cpp - Vectorized word-span set kernels ----------------===//
//
// Part of PPD. See Simd.h.
//
//===----------------------------------------------------------------------===//

#include "support/Simd.h"

#include <atomic>
#include <bit>

#if !defined(PPD_SIMD)
#define PPD_SIMD 1
#endif

#if PPD_SIMD && defined(__x86_64__) && defined(__GNUC__)
#define PPD_SIMD_X86 1
#include <immintrin.h>
#else
#define PPD_SIMD_X86 0
#endif

#if PPD_SIMD && defined(__aarch64__)
#define PPD_SIMD_NEON 1
#include <arm_neon.h>
#else
#define PPD_SIMD_NEON 0
#endif

using namespace ppd;
using namespace ppd::simd;

namespace {

//===----------------------------------------------------------------------===//
// Portable kernels: unrolled uint64 loops. These are also the reference
// semantics the vector bodies must match (race_simd_test pins dispatch
// here and re-runs the differential).
//===----------------------------------------------------------------------===//

bool intersectsPortable(const uint64_t *A, const uint64_t *B, size_t Words) {
  size_t I = 0;
  // Four-way OR-reduction per step trades a slightly later exit for fewer
  // branches on the (common) disjoint prefix.
  for (; I + 4 <= Words; I += 4) {
    uint64_t Any = (A[I] & B[I]) | (A[I + 1] & B[I + 1]) |
                   (A[I + 2] & B[I + 2]) | (A[I + 3] & B[I + 3]);
    if (Any)
      return true;
  }
  for (; I != Words; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

void intersectIntoPortable(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                           size_t Words) {
  for (size_t I = 0; I != Words; ++I)
    Dst[I] = A[I] & B[I];
}

void orIntoPortable(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  for (size_t I = 0; I != Words; ++I)
    Dst[I] |= Src[I];
}

uint64_t popcountPortable(const uint64_t *A, size_t Words) {
  uint64_t N = 0;
  size_t I = 0;
  for (; I + 4 <= Words; I += 4)
    N += uint64_t(std::popcount(A[I])) + std::popcount(A[I + 1]) +
         std::popcount(A[I + 2]) + std::popcount(A[I + 3]);
  for (; I != Words; ++I)
    N += std::popcount(A[I]);
  return N;
}

constexpr Ops PortableOps = {intersectsPortable, intersectIntoPortable,
                             orIntoPortable, popcountPortable};

#if PPD_SIMD_X86

//===----------------------------------------------------------------------===//
// SSE2 (baseline on x86-64): 128-bit lanes, two words per vector.
//===----------------------------------------------------------------------===//

__attribute__((target("sse2"))) bool
intersectsSse2(const uint64_t *A, const uint64_t *B, size_t Words) {
  size_t I = 0;
  for (; I + 4 <= Words; I += 4) {
    __m128i V0 = _mm_and_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I)));
    __m128i V1 = _mm_and_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I + 2)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I + 2)));
    __m128i Any = _mm_or_si128(V0, V1);
    // SSE2 has no ptest; compare against zero and inspect the mask.
    __m128i Zero = _mm_cmpeq_epi32(Any, _mm_setzero_si128());
    if (_mm_movemask_epi8(Zero) != 0xFFFF)
      return true;
  }
  for (; I != Words; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

__attribute__((target("sse2"))) void
intersectIntoSse2(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                  size_t Words) {
  size_t I = 0;
  for (; I + 2 <= Words; I += 2) {
    __m128i V = _mm_and_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I)));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I), V);
  }
  for (; I != Words; ++I)
    Dst[I] = A[I] & B[I];
}

__attribute__((target("sse2"))) void orIntoSse2(uint64_t *Dst,
                                                const uint64_t *Src,
                                                size_t Words) {
  size_t I = 0;
  for (; I + 2 <= Words; I += 2) {
    __m128i V = _mm_or_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Dst + I)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I)));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I), V);
  }
  for (; I != Words; ++I)
    Dst[I] |= Src[I];
}

constexpr Ops Sse2Ops = {intersectsSse2, intersectIntoSse2, orIntoSse2,
                         popcountPortable};

//===----------------------------------------------------------------------===//
// AVX2: 256-bit lanes, four words per vector, vptest for the early exit.
//===----------------------------------------------------------------------===//

__attribute__((target("avx2"))) bool
intersectsAvx2(const uint64_t *A, const uint64_t *B, size_t Words) {
  size_t I = 0;
  for (; I + 8 <= Words; I += 8) {
    __m256i V0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I)));
    __m256i V1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I + 4)));
    if (!_mm256_testz_si256(_mm256_or_si256(V0, V1),
                            _mm256_or_si256(V0, V1)))
      return true;
  }
  for (; I + 4 <= Words; I += 4) {
    __m256i A4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i B4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    if (!_mm256_testz_si256(A4, B4)) // vptest computes A & B == 0 directly
      return true;
  }
  for (; I != Words; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

__attribute__((target("avx2"))) void
intersectIntoAvx2(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                  size_t Words) {
  size_t I = 0;
  for (; I + 4 <= Words; I += 4) {
    __m256i V = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I)));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), V);
  }
  for (; I != Words; ++I)
    Dst[I] = A[I] & B[I];
}

__attribute__((target("avx2"))) void orIntoAvx2(uint64_t *Dst,
                                                const uint64_t *Src,
                                                size_t Words) {
  size_t I = 0;
  for (; I + 4 <= Words; I += 4) {
    __m256i V = _mm256_or_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I)));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I), V);
  }
  for (; I != Words; ++I)
    Dst[I] |= Src[I];
}

constexpr Ops Avx2Ops = {intersectsAvx2, intersectIntoAvx2, orIntoAvx2,
                         popcountPortable};

#endif // PPD_SIMD_X86

#if PPD_SIMD_NEON

//===----------------------------------------------------------------------===//
// NEON (aarch64 baseline): 128-bit lanes.
//===----------------------------------------------------------------------===//

bool intersectsNeon(const uint64_t *A, const uint64_t *B, size_t Words) {
  size_t I = 0;
  for (; I + 4 <= Words; I += 4) {
    uint64x2_t V0 = vandq_u64(vld1q_u64(A + I), vld1q_u64(B + I));
    uint64x2_t V1 = vandq_u64(vld1q_u64(A + I + 2), vld1q_u64(B + I + 2));
    uint64x2_t Any = vorrq_u64(V0, V1);
    if (vgetq_lane_u64(Any, 0) | vgetq_lane_u64(Any, 1))
      return true;
  }
  for (; I != Words; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

void intersectIntoNeon(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                       size_t Words) {
  size_t I = 0;
  for (; I + 2 <= Words; I += 2)
    vst1q_u64(Dst + I, vandq_u64(vld1q_u64(A + I), vld1q_u64(B + I)));
  for (; I != Words; ++I)
    Dst[I] = A[I] & B[I];
}

void orIntoNeon(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  size_t I = 0;
  for (; I + 2 <= Words; I += 2)
    vst1q_u64(Dst + I, vorrq_u64(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
  for (; I != Words; ++I)
    Dst[I] |= Src[I];
}

constexpr Ops NeonOps = {intersectsNeon, intersectIntoNeon, orIntoNeon,
                         popcountPortable};

#endif // PPD_SIMD_NEON

Level detectHost() {
#if PPD_SIMD_X86
  if (__builtin_cpu_supports("avx2"))
    return Level::AVX2;
  return Level::SSE2; // baseline on x86-64
#elif PPD_SIMD_NEON
  return Level::NEON;
#else
  return Level::Portable;
#endif
}

const Ops &opsFor(Level L) {
  switch (L) {
#if PPD_SIMD_X86
  case Level::AVX2:
    return Avx2Ops;
  case Level::SSE2:
    return Sse2Ops;
#endif
#if PPD_SIMD_NEON
  case Level::NEON:
    return NeonOps;
#endif
  default:
    return PortableOps;
  }
}

// The forced level, or a sentinel meaning "use the detected level".
// Atomic so tests that pin the portable path race-free against kernels
// running on pool workers (TSan leg).
constexpr uint8_t NoForce = 0xFF;
std::atomic<uint8_t> ForcedLevel{NoForce};

} // namespace

const char *simd::levelName(Level L) {
  switch (L) {
  case Level::Portable:
    return "portable";
  case Level::SSE2:
    return "sse2";
  case Level::AVX2:
    return "avx2";
  case Level::NEON:
    return "neon";
  }
  return "unknown";
}

Level simd::detectedLevel() {
  static const Level Host = detectHost();
  return Host;
}

Level simd::activeLevel() {
  uint8_t Forced = ForcedLevel.load(std::memory_order_acquire);
  return Forced == NoForce ? detectedLevel() : Level(Forced);
}

void simd::forceLevel(Level L) {
  // Never force a level the host cannot run (the vector body would fault)
  // or one this build does not contain: clamp to Portable, which every
  // build links.
  Level Host = detectedLevel();
  bool Runnable = L == Level::Portable || L == Host ||
                  (Host == Level::AVX2 && L == Level::SSE2);
  if (!Runnable)
    L = Level::Portable;
  ForcedLevel.store(uint8_t(L), std::memory_order_release);
}

const Ops &simd::ops() { return opsFor(activeLevel()); }
