//===- support/Simd.h - Vectorized word-span set kernels --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Width-agnostic SIMD kernels over spans of uint64 set words — the inner
/// loops of the vectorized race-detection tier (§6.3/§6.4 set math and the
/// batched happens-before closure). Four operations cover everything the
/// sweep needs:
///
///   * intersectsNonEmpty — fused "A ∩ B ≠ ∅" with early exit, the Def 6.3
///     conflict pretest;
///   * intersectInto      — A ∩ B materialized into caller scratch
///     (candidate enumeration: closure row AND accessor mask);
///   * orInto             — A |= B (closure construction, mask building);
///   * popcountWords      — |A| over a span (PairsExamined accounting).
///
/// Implementations exist for AVX2 and SSE2 (x86-64, compiled via function
/// target attributes so the rest of the TU stays baseline), NEON (aarch64),
/// and a portable unrolled uint64 loop. The widest level the host supports
/// is chosen once at startup; `forceLevel(Level::Portable)` pins the
/// dispatch for differential tests of the fallback path, and the CMake
/// option PPD_SIMD=OFF removes the vector bodies entirely so the portable
/// loop is all that links (the CI fallback leg).
///
/// All pointers must be naturally aligned for uint64 (the arena allocator
/// in FixedVarSet.h guarantees this); no wider alignment is required — the
/// vector loops use unaligned loads, which cost nothing on the targeted
/// microarchitectures.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_SIMD_H
#define PPD_SUPPORT_SIMD_H

#include <cstddef>
#include <cstdint>

namespace ppd::simd {

enum class Level : uint8_t { Portable, SSE2, AVX2, NEON };

const char *levelName(Level L);

/// The level the dispatcher selected (host-detected, or forced).
Level activeLevel();

/// Detected host capability, ignoring any forceLevel override.
Level detectedLevel();

/// Pins dispatch to \p L (tests use Portable to exercise the fallback on
/// SIMD-capable hosts). Levels above detectedLevel() are clamped. Not
/// intended for concurrent use with in-flight kernels; tests call it
/// between detections.
void forceLevel(Level L);

/// The kernel bundle for one dispatch level. Callers normally use the free
/// functions below, which route through the active level.
struct Ops {
  bool (*IntersectsNonEmpty)(const uint64_t *A, const uint64_t *B,
                             size_t Words);
  void (*IntersectInto)(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                        size_t Words);
  void (*OrInto)(uint64_t *Dst, const uint64_t *Src, size_t Words);
  uint64_t (*PopcountWords)(const uint64_t *A, size_t Words);
};

/// The bundle for the active level.
const Ops &ops();

inline bool intersectsNonEmpty(const uint64_t *A, const uint64_t *B,
                               size_t Words) {
  return ops().IntersectsNonEmpty(A, B, Words);
}
inline void intersectInto(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                          size_t Words) {
  ops().IntersectInto(Dst, A, B, Words);
}
inline void orInto(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  ops().OrInto(Dst, Src, Words);
}
inline uint64_t popcountWords(const uint64_t *A, size_t Words) {
  return ops().PopcountWords(A, Words);
}

} // namespace ppd::simd

#endif // PPD_SUPPORT_SIMD_H
