//===- support/VarSet.h - Variable-set representations ----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sets of variables identified by dense unsigned ids, in the two
/// representations the paper's §7 compares: a bit-mask (BitVarSet) and a
/// sorted list (ListVarSet). The paper remarks that "using bit-mask
/// representations for sets of variables (as opposed to a list structure)
/// can have a large payoff"; bench/bench_varset.cpp measures exactly that
/// claim, and the data-flow analyses are templated over the representation
/// so the comparison runs the real algorithms.
///
/// Both classes implement the same interface (the VariableSet concept):
///   insert/contains/remove, unionWith/intersectWith/subtract/intersects,
///   size/empty/clear, toVector, equality.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_VARSET_H
#define PPD_SUPPORT_VARSET_H

#include <algorithm>
#include <bit>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <vector>

namespace ppd {

/// The operations the data-flow framework requires of a set representation.
template <typename S>
concept VariableSet = requires(S Set, const S CSet, unsigned Id) {
  { Set.insert(Id) } -> std::same_as<bool>;
  { CSet.contains(Id) } -> std::same_as<bool>;
  { Set.remove(Id) } -> std::same_as<bool>;
  { Set.unionWith(CSet) } -> std::same_as<bool>;
  { Set.intersectWith(CSet) } -> std::same_as<void>;
  { Set.subtract(CSet) } -> std::same_as<void>;
  { CSet.intersects(CSet) } -> std::same_as<bool>;
  { CSet.size() } -> std::same_as<unsigned>;
  { CSet.empty() } -> std::same_as<bool>;
  { Set.clear() } -> std::same_as<void>;
  { CSet.toVector() } -> std::same_as<std::vector<unsigned>>;
};

/// Bit-mask representation: one bit per variable id. Grows on demand; all
/// binary operations accept operands of different widths.
class BitVarSet {
public:
  BitVarSet() = default;
  explicit BitVarSet(unsigned Universe) { reserveFor(Universe); }

  /// Ensures ids in [0, Universe) can be stored without reallocation.
  void reserveFor(unsigned Universe) {
    if (Universe > 0)
      growTo(Universe - 1);
  }

  /// Inserts \p Id; returns true if it was not already present.
  bool insert(unsigned Id) {
    growTo(Id);
    uint64_t Mask = uint64_t(1) << (Id % 64);
    uint64_t &Word = Words[Id / 64];
    if (Word & Mask)
      return false;
    Word |= Mask;
    return true;
  }

  bool contains(unsigned Id) const {
    if (Id / 64 >= Words.size())
      return false;
    return (Words[Id / 64] >> (Id % 64)) & 1;
  }

  /// Removes \p Id; returns true if it was present.
  bool remove(unsigned Id) {
    if (Id / 64 >= Words.size())
      return false;
    uint64_t Mask = uint64_t(1) << (Id % 64);
    uint64_t &Word = Words[Id / 64];
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    return true;
  }

  /// Set-union in place; returns true if this set changed.
  bool unionWith(const BitVarSet &Other) {
    if (Other.Words.size() > Words.size())
      Words.resize(Other.Words.size(), 0);
    bool Changed = false;
    for (size_t I = 0, E = Other.Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  void intersectWith(const BitVarSet &Other) {
    size_t Common = std::min(Words.size(), Other.Words.size());
    for (size_t I = 0; I != Common; ++I)
      Words[I] &= Other.Words[I];
    for (size_t I = Common, E = Words.size(); I != E; ++I)
      Words[I] = 0;
    trim();
  }

  /// this = A ∩ B without allocating when capacity suffices — the form
  /// race detection's per-pair classification uses with member scratch
  /// sets instead of three fresh copies per pair.
  void assignIntersection(const BitVarSet &A, const BitVarSet &B) {
    size_t Common = std::min(A.Words.size(), B.Words.size());
    if (Words.size() < Common)
      Words.resize(Common, 0);
    for (size_t I = 0; I != Common; ++I)
      Words[I] = A.Words[I] & B.Words[I];
    std::fill(Words.begin() + Common, Words.end(), 0);
    trim();
  }

  /// Removes every element of \p Other from this set.
  void subtract(const BitVarSet &Other) {
    size_t Common = std::min(Words.size(), Other.Words.size());
    for (size_t I = 0; I != Common; ++I)
      Words[I] &= ~Other.Words[I];
    trim();
  }

  /// True if the two sets share at least one element. This is the hot
  /// operation of race detection (Def 6.3: WRITE/WRITE and READ/WRITE
  /// intersection tests).
  bool intersects(const BitVarSet &Other) const {
    size_t Common = std::min(Words.size(), Other.Words.size());
    for (size_t I = 0; I != Common; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  /// True if this set shares an element with \p B1 ∪ \p B2, fused into a
  /// single early-exit word loop — the Def 6.3 "any conflict at all"
  /// pretest (does WRITE ∩ (READ' ∪ WRITE') ≠ ∅) without materializing
  /// the union.
  bool intersectsAny(const BitVarSet &B1, const BitVarSet &B2) const {
    size_t N1 = std::min(Words.size(), B1.Words.size());
    size_t N2 = std::min(Words.size(), B2.Words.size());
    size_t Common = std::min(N1, N2);
    for (size_t I = 0; I != Common; ++I)
      if (Words[I] & (B1.Words[I] | B2.Words[I]))
        return true;
    for (size_t I = Common; I < N1; ++I)
      if (Words[I] & B1.Words[I])
        return true;
    for (size_t I = Common; I < N2; ++I)
      if (Words[I] & B2.Words[I])
        return true;
    return false;
  }

  unsigned size() const {
    unsigned N = 0;
    for (uint64_t Word : Words)
      N += std::popcount(Word);
    return N;
  }

  bool empty() const {
    for (uint64_t Word : Words)
      if (Word)
        return false;
    return true;
  }

  /// Zero-fills in place, keeping capacity: hot callers (the per-edge
  /// READ/WRITE sets cleared at every sync node) reuse the same words
  /// instead of re-growing from empty on each edge. Equality and empty()
  /// already treat trailing zero words as absent.
  void clear() { std::fill(Words.begin(), Words.end(), 0); }

  /// Calls \p Callback for each element in increasing order. Lets hot
  /// consumers (race detection, sync-record capture) walk the set without
  /// materializing a vector.
  template <typename Fn> void forEach(Fn &&Callback) const {
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Word = Words[I];
      while (Word) {
        unsigned Bit = std::countr_zero(Word);
        Callback(unsigned(I) * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  /// Elements in increasing order.
  std::vector<unsigned> toVector() const {
    std::vector<unsigned> Out;
    Out.reserve(size());
    forEach([&Out](unsigned Id) { Out.push_back(Id); });
    return Out;
  }

  /// Raw word storage (64 ids per word, LSB first). Lets the vectorized
  /// race tier memcpy a set into its flat arena rows; trim() guarantees
  /// no trailing zero words after shrinking ops, so numWords() is also a
  /// sound upper bound for word-wise hashing.
  const uint64_t *wordsData() const { return Words.data(); }
  size_t numWords() const { return Words.size(); }

  friend bool operator==(const BitVarSet &A, const BitVarSet &B) {
    size_t Common = std::min(A.Words.size(), B.Words.size());
    for (size_t I = 0; I != Common; ++I)
      if (A.Words[I] != B.Words[I])
        return false;
    for (size_t I = Common; I < A.Words.size(); ++I)
      if (A.Words[I])
        return false;
    for (size_t I = Common; I < B.Words.size(); ++I)
      if (B.Words[I])
        return false;
    return true;
  }

private:
  void growTo(unsigned Id) {
    size_t Need = size_t(Id) / 64 + 1;
    if (Need > Words.size())
      Words.resize(Need, 0);
  }

  /// Drops trailing zero words after shrinking operations. Equality and
  /// empty() already skip dead capacity; trimming keeps size()/forEach
  /// loops short and means any word-wise hash of Words needs no
  /// trailing-zero special case. Capacity is retained (vector resize
  /// never shrinks allocation), so hot scratch reuse stays
  /// allocation-free.
  void trim() {
    size_t Live = Words.size();
    while (Live && Words[Live - 1] == 0)
      --Live;
    Words.resize(Live);
  }

  std::vector<uint64_t> Words;
};

/// Sorted-vector ("list structure") representation, the baseline the paper
/// compares bit-masks against.
class ListVarSet {
public:
  ListVarSet() = default;
  explicit ListVarSet(unsigned /*Universe*/) {}

  void reserveFor(unsigned Universe) { Elements.reserve(Universe); }

  bool insert(unsigned Id) {
    auto It = std::lower_bound(Elements.begin(), Elements.end(), Id);
    if (It != Elements.end() && *It == Id)
      return false;
    Elements.insert(It, Id);
    return true;
  }

  bool contains(unsigned Id) const {
    return std::binary_search(Elements.begin(), Elements.end(), Id);
  }

  bool remove(unsigned Id) {
    auto It = std::lower_bound(Elements.begin(), Elements.end(), Id);
    if (It == Elements.end() || *It != Id)
      return false;
    Elements.erase(It);
    return true;
  }

  bool unionWith(const ListVarSet &Other) {
    if (Other.Elements.empty())
      return false;
    std::vector<unsigned> Merged;
    Merged.reserve(Elements.size() + Other.Elements.size());
    std::set_union(Elements.begin(), Elements.end(), Other.Elements.begin(),
                   Other.Elements.end(), std::back_inserter(Merged));
    bool Changed = Merged.size() != Elements.size();
    Elements = std::move(Merged);
    return Changed;
  }

  void intersectWith(const ListVarSet &Other) {
    std::vector<unsigned> Out;
    std::set_intersection(Elements.begin(), Elements.end(),
                          Other.Elements.begin(), Other.Elements.end(),
                          std::back_inserter(Out));
    Elements = std::move(Out);
  }

  void subtract(const ListVarSet &Other) {
    std::vector<unsigned> Out;
    std::set_difference(Elements.begin(), Elements.end(),
                        Other.Elements.begin(), Other.Elements.end(),
                        std::back_inserter(Out));
    Elements = std::move(Out);
  }

  bool intersects(const ListVarSet &Other) const {
    auto A = Elements.begin(), AEnd = Elements.end();
    auto B = Other.Elements.begin(), BEnd = Other.Elements.end();
    while (A != AEnd && B != BEnd) {
      if (*A == *B)
        return true;
      if (*A < *B)
        ++A;
      else
        ++B;
    }
    return false;
  }

  unsigned size() const { return unsigned(Elements.size()); }
  bool empty() const { return Elements.empty(); }
  void clear() { Elements.clear(); }

  template <typename Fn> void forEach(Fn &&Callback) const {
    for (unsigned Id : Elements)
      Callback(Id);
  }

  std::vector<unsigned> toVector() const { return Elements; }

  friend bool operator==(const ListVarSet &A, const ListVarSet &B) {
    return A.Elements == B.Elements;
  }

private:
  std::vector<unsigned> Elements; // sorted, unique
};

static_assert(VariableSet<BitVarSet>);
static_assert(VariableSet<ListVarSet>);

} // namespace ppd

#endif // PPD_SUPPORT_VARSET_H
