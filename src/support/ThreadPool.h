//===- support/ThreadPool.h - Work-stealing task pool -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the replay service. Log intervals
/// are independent by construction (prelog-seeded and, on race-free
/// instances, interleaving-independent, §5.5), so regenerating their
/// traces is embarrassingly parallel — the same observation distributed
/// event-graph debuggers exploit.
///
/// Design: one deque per worker. A worker pops its own deque LIFO (hot
/// caches for freshly spawned work) and steals FIFO from the other end of
/// a victim's deque (the oldest — and typically largest — task). External
/// submissions are distributed round-robin. A pool constructed with zero
/// threads degenerates to inline execution on the submitting thread, which
/// gives callers a deterministic serial mode with the same API.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_THREADPOOL_H
#define PPD_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ppd {

/// Point-in-time snapshot of a pool's activity counters. Plain values so
/// callers (the debugger `stats` command, the server metrics layer) can
/// format or aggregate them without touching atomics.
struct ThreadPoolStats {
  /// Tasks accepted by submit().
  uint64_t Submitted = 0;
  /// Tasks run to completion (on workers, helpers, or inline).
  uint64_t Executed = 0;
  /// Tasks a worker took from another worker's deque.
  uint64_t Stolen = 0;
  /// Tasks run inline on the submitting thread (zero-worker pools).
  uint64_t InlineRuns = 0;
};

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means "run every task inline".
  explicit ThreadPool(unsigned Threads) {
    for (unsigned I = 0; I != Threads; ++I)
      Queues.push_back(std::make_unique<WorkerQueue>());
    for (unsigned I = 0; I != Threads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(WakeMutex);
      Stopping = true;
    }
    WakeCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  unsigned numThreads() const { return unsigned(Workers.size()); }

  /// A sensible worker count for CPU-bound replay on this machine.
  static unsigned defaultConcurrency() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Schedules \p Task. Inline when the pool has no workers; onto the
  /// submitting worker's own deque when called from inside the pool
  /// (nested fan-out never blocks on a full pipeline); round-robin
  /// otherwise.
  void submit(std::function<void()> Task) {
    Submitted.fetch_add(1, std::memory_order_relaxed);
    if (Queues.empty()) {
      InlineRuns.fetch_add(1, std::memory_order_relaxed);
      Task();
      Executed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    unsigned Target;
    if (CurrentPool == this)
      Target = CurrentWorker;
    else
      Target = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               unsigned(Queues.size());
    {
      std::lock_guard<std::mutex> Lock(Queues[Target]->Mutex);
      Queues[Target]->Tasks.push_back(std::move(Task));
    }
    Pending.fetch_add(1, std::memory_order_release);
    // Synchronize with the sleep predicate: a worker between its predicate
    // check and the wait would otherwise miss this notification.
    { std::lock_guard<std::mutex> Lock(WakeMutex); }
    WakeCv.notify_one();
  }

  /// True when called from one of this pool's workers.
  bool onWorkerThread() const { return CurrentPool == this; }

  /// Cooperatively runs one queued task on the calling thread, stealing if
  /// necessary. Returns false when no task was available. Lets a thread
  /// that is waiting for pool work help drain it instead of idling — and
  /// keeps single-threaded pools deadlock-free when a caller blocks.
  bool runOneTask() {
    std::function<void()> Task;
    if (!takeTask(CurrentPool == this ? CurrentWorker : 0, Task))
      return false;
    Task();
    Executed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Relaxed snapshot of the activity counters; safe to call while tasks
  /// are running (values may be mid-update but never torn).
  ThreadPoolStats stats() const {
    ThreadPoolStats Out;
    Out.Submitted = Submitted.load(std::memory_order_relaxed);
    Out.Executed = Executed.load(std::memory_order_relaxed);
    Out.Stolen = Stolen.load(std::memory_order_relaxed);
    Out.InlineRuns = InlineRuns.load(std::memory_order_relaxed);
    return Out;
  }

private:
  struct WorkerQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  /// Pops from our own deque (back, LIFO) or steals (front, FIFO) from
  /// another worker's. \p Self is the preferred queue index.
  bool takeTask(unsigned Self, std::function<void()> &Out) {
    if (Queues.empty())
      return false;
    unsigned N = unsigned(Queues.size());
    for (unsigned Attempt = 0; Attempt != N; ++Attempt) {
      unsigned Idx = (Self + Attempt) % N;
      WorkerQueue &Q = *Queues[Idx];
      std::lock_guard<std::mutex> Lock(Q.Mutex);
      if (Q.Tasks.empty())
        continue;
      if (Idx == Self) {
        Out = std::move(Q.Tasks.back());
        Q.Tasks.pop_back();
      } else {
        Out = std::move(Q.Tasks.front());
        Q.Tasks.pop_front();
        Stolen.fetch_add(1, std::memory_order_relaxed);
      }
      Pending.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void workerLoop(unsigned Index) {
    CurrentPool = this;
    CurrentWorker = Index;
    for (;;) {
      std::function<void()> Task;
      if (takeTask(Index, Task)) {
        Task();
        Executed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock<std::mutex> Lock(WakeMutex);
      WakeCv.wait(Lock, [this] {
        return Stopping || Pending.load(std::memory_order_acquire) != 0;
      });
      if (Stopping && Pending.load(std::memory_order_acquire) == 0)
        return;
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::mutex WakeMutex;
  std::condition_variable WakeCv;
  std::atomic<uint64_t> NextQueue{0};
  std::atomic<uint64_t> Pending{0};
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Executed{0};
  std::atomic<uint64_t> Stolen{0};
  std::atomic<uint64_t> InlineRuns{0};
  bool Stopping = false;

  static thread_local const ThreadPool *CurrentPool;
  static thread_local unsigned CurrentWorker;
};

} // namespace ppd

#endif // PPD_SUPPORT_THREADPOOL_H
