//===- support/Arith.h - Wraparound integer semantics -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PPL's `int` is a 64-bit two's-complement machine word: arithmetic wraps
/// on overflow rather than being undefined. Both interpreters — the VM's
/// object code and the replay engine's emulation package — must evaluate
/// through these helpers so an overflowing program replays bit-identically
/// (and so the sanitizer builds stay clean on fuzzed arithmetic).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_SUPPORT_ARITH_H
#define PPD_SUPPORT_ARITH_H

#include <cstdint>

namespace ppd {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return int64_t(uint64_t(A) + uint64_t(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return int64_t(uint64_t(A) - uint64_t(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return int64_t(uint64_t(A) * uint64_t(B));
}
inline int64_t wrapNeg(int64_t A) { return int64_t(0 - uint64_t(A)); }

/// Quotient with the one overflowing case (INT64_MIN / -1, a hardware
/// trap) wrapped back to INT64_MIN. Caller handles B == 0.
inline int64_t wrapDiv(int64_t A, int64_t B) {
  if (B == -1)
    return wrapNeg(A);
  return A / B;
}

/// Remainder; INT64_MIN % -1 is 0 but traps on x86, so special-case it.
/// Caller handles B == 0.
inline int64_t wrapMod(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

} // namespace ppd

#endif // PPD_SUPPORT_ARITH_H
