//===- bytecode/Chunk.cpp -------------------------------------------------===//
//
// Part of PPD. See Chunk.h and Instr.h.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Chunk.h"

using namespace ppd;

const char *ppd::opName(Op Opcode) {
  switch (Opcode) {
  case Op::PushConst:
    return "PushConst";
  case Op::Pop:
    return "Pop";
  case Op::ToBool:
    return "ToBool";
  case Op::LoadLocal:
    return "LoadLocal";
  case Op::StoreLocal:
    return "StoreLocal";
  case Op::LoadLocalElem:
    return "LoadLocalElem";
  case Op::StoreLocalElem:
    return "StoreLocalElem";
  case Op::ZeroLocal:
    return "ZeroLocal";
  case Op::LoadShared:
    return "LoadShared";
  case Op::StoreShared:
    return "StoreShared";
  case Op::LoadSharedElem:
    return "LoadSharedElem";
  case Op::StoreSharedElem:
    return "StoreSharedElem";
  case Op::LoadPriv:
    return "LoadPriv";
  case Op::StorePriv:
    return "StorePriv";
  case Op::LoadPrivElem:
    return "LoadPrivElem";
  case Op::StorePrivElem:
    return "StorePrivElem";
  case Op::Add:
    return "Add";
  case Op::Sub:
    return "Sub";
  case Op::Mul:
    return "Mul";
  case Op::Div:
    return "Div";
  case Op::Mod:
    return "Mod";
  case Op::Neg:
    return "Neg";
  case Op::Not:
    return "Not";
  case Op::CmpEq:
    return "CmpEq";
  case Op::CmpNe:
    return "CmpNe";
  case Op::CmpLt:
    return "CmpLt";
  case Op::CmpLe:
    return "CmpLe";
  case Op::CmpGt:
    return "CmpGt";
  case Op::CmpGe:
    return "CmpGe";
  case Op::Jump:
    return "Jump";
  case Op::JumpIfFalse:
    return "JumpIfFalse";
  case Op::JumpIfTrue:
    return "JumpIfTrue";
  case Op::Call:
    return "Call";
  case Op::Ret:
    return "Ret";
  case Op::CallBuiltin:
    return "CallBuiltin";
  case Op::SemP:
    return "SemP";
  case Op::SemV:
    return "SemV";
  case Op::SendCh:
    return "SendCh";
  case Op::RecvCh:
    return "RecvCh";
  case Op::SpawnProc:
    return "SpawnProc";
  case Op::PrintVal:
    return "PrintVal";
  case Op::InputVal:
    return "InputVal";
  case Op::Prelog:
    return "Prelog";
  case Op::Postlog:
    return "Postlog";
  case Op::UnitLog:
    return "UnitLog";
  case Op::TraceStmt:
    return "TraceStmt";
  case Op::TraceCallBegin:
    return "TraceCallBegin";
  case Op::TraceCallEnd:
    return "TraceCallEnd";
  case Op::Halt:
    return "Halt";
  }
  return "???";
}

std::string Chunk::disassemble(const std::string &Name) const {
  std::string Out = "== " + Name + " ==\n";
  for (uint32_t Pc = 0; Pc != size(); ++Pc) {
    const Instr &I = Code[Pc];
    Out += std::to_string(Pc);
    Out += ":\t";
    Out += opName(I.Opcode);
    Out += " A=" + std::to_string(I.A);
    Out += " B=" + std::to_string(I.B);
    if (I.Imm != 0)
      Out += " Imm=" + std::to_string(I.Imm);
    if (Stmts[Pc] != InvalidId)
      Out += "\t; s" + std::to_string(Stmts[Pc]);
    Out += '\n';
  }
  return Out;
}
