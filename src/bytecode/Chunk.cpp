//===- bytecode/Chunk.cpp -------------------------------------------------===//
//
// Part of PPD. See Chunk.h and Instr.h.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Chunk.h"

using namespace ppd;

const char *ppd::opName(Op Opcode) {
  static const char *const Names[] = {
#define PPD_OPCODE_NAME(Name) #Name,
      PPD_BASE_OPCODES(PPD_OPCODE_NAME)
#undef PPD_OPCODE_NAME
  };
  if (size_t(Opcode) < NumOps)
    return Names[size_t(Opcode)];
  return "???";
}

std::string Chunk::disassemble(const std::string &Name) const {
  std::string Out = "== " + Name + " ==\n";
  for (uint32_t Pc = 0; Pc != size(); ++Pc) {
    const Instr &I = Code[Pc];
    Out += std::to_string(Pc);
    Out += ":\t";
    Out += opName(I.Opcode);
    Out += " A=" + std::to_string(I.A);
    Out += " B=" + std::to_string(I.B);
    if (I.Imm != 0)
      Out += " Imm=" + std::to_string(I.Imm);
    if (Stmts[Pc] != InvalidId)
      Out += "\t; s" + std::to_string(Stmts[Pc]);
    Out += '\n';
  }
  return Out;
}
