//===- bytecode/Decoded.cpp -----------------------------------------------===//
//
// Part of PPD. See Decoded.h.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Decoded.h"

using namespace ppd;

static bool isCmp(DOp Opcode) {
  switch (Opcode) {
  case DOp::CmpEq:
  case DOp::CmpNe:
  case DOp::CmpLt:
  case DOp::CmpLe:
  case DOp::CmpGt:
  case DOp::CmpGe:
    return true;
  default:
    return false;
  }
}

static CmpKind cmpKindOf(DOp Opcode) {
  switch (Opcode) {
  case DOp::CmpEq:
    return CmpKind::Eq;
  case DOp::CmpNe:
    return CmpKind::Ne;
  case DOp::CmpLt:
    return CmpKind::Lt;
  case DOp::CmpLe:
    return CmpKind::Le;
  case DOp::CmpGt:
    return CmpKind::Gt;
  default:
    return CmpKind::Ge;
  }
}

DecodedChunk DecodedChunk::decode(const Chunk &C) {
  DecodedChunk D;
  D.Instrs.resize(C.size());
  for (uint32_t Pc = 0; Pc != C.size(); ++Pc) {
    const Instr &I = C.at(Pc);
    DecodedInstr &DI = D.Instrs[Pc];
    DI.Opcode = DOp(uint8_t(I.Opcode));
    DI.Stmt = C.stmtAt(Pc);
    DI.A = I.A;
    DI.B = I.B;
    DI.Imm = I.Imm;
    if (isCmp(DI.Opcode))
      DI.Sub = uint8_t(cmpKindOf(DI.Opcode));
  }

  // Superinstruction rewriting. The second slot of a fused pair keeps its
  // plain decoding, so jumps into it and split (half-step) execution both
  // work; pairs can never overlap because no second-half opcode
  // (JumpIf*, StoreLocal) is also a first-half opcode (Cmp*, PushConst).
  for (uint32_t Pc = 0; Pc + 1 < D.size(); ++Pc) {
    DecodedInstr &First = D.Instrs[Pc];
    const DecodedInstr &Second = D.Instrs[Pc + 1];
    // A statement transition between the two halves would carry a
    // breakpoint check the fused form must not skip.
    if (First.Stmt != Second.Stmt)
      continue;
    if (isCmp(First.Opcode) && (Second.Opcode == DOp::JumpIfFalse ||
                                Second.Opcode == DOp::JumpIfTrue)) {
      First.Sub = uint8_t((First.Sub << 1) |
                          (Second.Opcode == DOp::JumpIfTrue ? 1 : 0));
      First.Opcode = DOp::JumpIfCmp;
      First.A = Second.A;
      ++D.FusedPairs;
    } else if (First.Opcode == DOp::PushConst &&
               Second.Opcode == DOp::StoreLocal) {
      First.Opcode = DOp::StoreLocalImm;
      First.A = Second.A;
      First.B = Second.B;
      ++D.FusedPairs;
    }
  }
  return D;
}
