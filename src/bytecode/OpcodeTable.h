//===- bytecode/OpcodeTable.h - The X-macro opcode table --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for the instruction set. Everything that
/// enumerates opcodes — the `Op` enum (Instr.h), the decoded `DOp` enum
/// (Decoded.h), `opName`, and the dispatch tables of both interpreters
/// (vm/Machine.cpp and core/Replay.cpp, via vm/Dispatch.h) — expands one of
/// these X-macros, so an opcode added here automatically reaches every
/// consumer and the execution-phase and debugging-phase engines cannot
/// drift structurally.
///
/// PPD_BASE_OPCODES lists the encodable instruction set in enum order.
/// PPD_FUSED_OPCODES lists the decode-time superinstructions that exist
/// only in the pre-decoded stream (never in a Chunk): the decoder rewrites
/// common adjacent pairs into them, keeping a 1:1 slot layout so the second
/// instruction of a fused pair remains individually executable (see
/// Decoded.h).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BYTECODE_OPCODETABLE_H
#define PPD_BYTECODE_OPCODETABLE_H

// clang-format off
#define PPD_BASE_OPCODES(X)                                                  \
  /* Stack. */                                                               \
  X(PushConst) X(Pop) X(ToBool)                                              \
  /* Locals (frame slots). A = slot, B = VarId, Imm = array size. */         \
  X(LoadLocal) X(StoreLocal) X(LoadLocalElem) X(StoreLocalElem)              \
  X(ZeroLocal)                                                               \
  /* Shared globals. A = offset, B = VarId. */                               \
  X(LoadShared) X(StoreShared) X(LoadSharedElem) X(StoreSharedElem)          \
  /* Private (per-process) globals. A = offset, B = VarId. */                \
  X(LoadPriv) X(StorePriv) X(LoadPrivElem) X(StorePrivElem)                  \
  /* Arithmetic / comparison. */                                             \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(Neg) X(Not)                           \
  X(CmpEq) X(CmpNe) X(CmpLt) X(CmpLe) X(CmpGt) X(CmpGe)                      \
  /* Control flow. A = absolute target pc. */                                \
  X(Jump) X(JumpIfFalse) X(JumpIfTrue)                                       \
  /* Calls. A = function index / Builtin kind, B = argc. */                  \
  X(Call) X(Ret) X(CallBuiltin)                                              \
  /* Parallel constructs and I/O. */                                         \
  X(SemP) X(SemV) X(SendCh) X(RecvCh) X(SpawnProc) X(PrintVal) X(InputVal)   \
  /* Instrumentation: object code only. */                                   \
  X(Prelog) X(Postlog) X(UnitLog)                                            \
  /* Instrumentation: emulation package only. */                             \
  X(TraceStmt) X(TraceCallBegin) X(TraceCallEnd)                             \
  X(Halt)

#define PPD_FUSED_OPCODES(X)                                                 \
  /* Cmp* + JumpIf{False,True}: A = target, Sub = (CmpKind<<1)|sense. */     \
  X(JumpIfCmp)                                                               \
  /* PushConst + StoreLocal: A = slot, B = VarId, Imm = constant. */         \
  X(StoreLocalImm)

#define PPD_DECODED_OPCODES(X) PPD_BASE_OPCODES(X) PPD_FUSED_OPCODES(X)
// clang-format on

#endif // PPD_BYTECODE_OPCODETABLE_H
