//===- bytecode/Instr.h - PPD bytecode instruction set ----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-bytecode instruction set both compiled artifacts share. The
/// Compiler/Linker of the paper's preparatory phase (Fig 3.1) emits two
/// versions of every function from one code generator:
///
///   * the *object code*, carrying Prelog/Postlog/UnitLog instrumentation
///     that produces the execution-phase log, and
///   * the *emulation package*, carrying TraceStmt/TraceCall*
///     instrumentation that regenerates fine-grained traces when the PPD
///     controller replays a log interval during the debugging phase.
///
/// Encoding: fixed-width instructions with two 32-bit operands (A, B) and
/// one 64-bit immediate. Memory operands: A = storage offset (frame slot,
/// shared-memory offset, or private-global offset), B = the VarId, so
/// logging and tracing can attribute every access to a source variable
/// without lookups. Jump targets are absolute indices into the function's
/// chunk.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BYTECODE_INSTR_H
#define PPD_BYTECODE_INSTR_H

#include <cstdint>

namespace ppd {

enum class Op : uint8_t {
  // Stack.
  PushConst, ///< push Imm
  Pop,       ///< drop top
  ToBool,    ///< top = (top != 0)

  // Locals (frame slots). A = slot, B = VarId, Imm = array size (Elem ops).
  LoadLocal,
  StoreLocal,
  LoadLocalElem,  ///< pops index, pushes value
  StoreLocalElem, ///< pops value then index
  ZeroLocal,      ///< zero-fills slots [A, A+Imm)

  // Shared globals (simulated shared memory). A = offset, B = VarId.
  LoadShared,
  StoreShared,
  LoadSharedElem,
  StoreSharedElem,

  // Private (per-process) globals. A = offset, B = VarId.
  LoadPriv,
  StorePriv,
  LoadPrivElem,
  StorePrivElem,

  // Arithmetic / comparison (pop 2 push 1, except Neg/Not pop 1 push 1).
  Add,
  Sub,
  Mul,
  Div, ///< traps on divide by zero
  Mod, ///< traps on modulo by zero
  Neg,
  Not,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,

  // Control flow. A = absolute target pc within the chunk.
  Jump,
  JumpIfFalse, ///< pops condition
  JumpIfTrue,  ///< pops condition

  // Calls. A = function index, B = argc (args pushed left-to-right).
  Call,
  Ret,         ///< pops return value; every function returns a value
  CallBuiltin, ///< A = Builtin kind, B = argc

  // Parallel constructs.
  SemP,      ///< A = semaphore id; may block
  SemV,      ///< A = semaphore id
  SendCh,    ///< A = channel id; pops value; may block (capacity 0/full)
  RecvCh,    ///< A = channel id; pushes value; may block
  SpawnProc, ///< A = function index, B = argc; pops args
  PrintVal,  ///< pops and records program output
  InputVal,  ///< pushes next input value; logged during execution

  // Instrumentation: object code only.
  Prelog,  ///< A = e-block id; logs values of USED(A)
  Postlog, ///< A = e-block id, B = flags (bit0: exits function, return
           ///< value on stack top is captured without popping)
  UnitLog, ///< A = synchronization-unit id; logs the unit's shared reads

  // Instrumentation: emulation package only.
  TraceStmt,      ///< A = StmtId; begins a trace event
  TraceCallBegin, ///< A = function index, B = StmtId of the call site
  TraceCallEnd,   ///< A = function index; return value on stack top

  Halt, ///< terminates the process; emitted after the root frame returns.
};

/// Postlog flag bits.
enum PostlogFlags : uint32_t {
  PostlogExitsFunction = 1u << 0,
};

struct Instr {
  Op Opcode;
  int32_t A = 0;
  int32_t B = 0;
  int64_t Imm = 0;
};

/// Mnemonic for \p Opcode (e.g. "LoadLocal").
const char *opName(Op Opcode);

} // namespace ppd

#endif // PPD_BYTECODE_INSTR_H
