//===- bytecode/Instr.h - PPD bytecode instruction set ----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-bytecode instruction set both compiled artifacts share. The
/// Compiler/Linker of the paper's preparatory phase (Fig 3.1) emits two
/// versions of every function from one code generator:
///
///   * the *object code*, carrying Prelog/Postlog/UnitLog instrumentation
///     that produces the execution-phase log, and
///   * the *emulation package*, carrying TraceStmt/TraceCall*
///     instrumentation that regenerates fine-grained traces when the PPD
///     controller replays a log interval during the debugging phase.
///
/// Encoding: fixed-width instructions with two 32-bit operands (A, B) and
/// one 64-bit immediate. Memory operands: A = storage offset (frame slot,
/// shared-memory offset, or private-global offset), B = the VarId, so
/// logging and tracing can attribute every access to a source variable
/// without lookups. Jump targets are absolute indices into the function's
/// chunk.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BYTECODE_INSTR_H
#define PPD_BYTECODE_INSTR_H

#include "bytecode/OpcodeTable.h"

#include <cstdint>

namespace ppd {

/// The encodable opcodes, generated from the single X-macro table
/// (OpcodeTable.h). Operand conventions, by group:
///
///  * Stack: PushConst pushes Imm; Pop drops top; ToBool sets top != 0.
///  * Locals: A = frame slot, B = VarId, Imm = array size (Elem ops pop
///    the index; StoreLocalElem pops value then index); ZeroLocal
///    zero-fills slots [A, A+Imm).
///  * Shared / private globals: A = segment offset, B = VarId.
///  * Arithmetic / comparison: pop 2 push 1 (Neg/Not pop 1 push 1); Div
///    and Mod trap on a zero divisor.
///  * Control flow: A = absolute target pc; JumpIf* pop the condition.
///  * Calls: A = function index (CallBuiltin: Builtin kind), B = argc,
///    args pushed left-to-right; Ret pops the return value.
///  * Parallel constructs: A = semaphore/channel/function id; SendCh pops
///    the value, RecvCh pushes it; SpawnProc pops B args; PrintVal pops
///    and records output; InputVal pushes the next input value.
///  * Object-code instrumentation: Prelog/UnitLog log USED(A) / the
///    unit's shared reads; Postlog's B carries PostlogFlags (bit0: exits
///    function, return value on stack top captured without popping).
///  * Emulation-package instrumentation: TraceStmt begins a trace event
///    for statement A; TraceCallBegin (A = callee, B = call-site StmtId)
///    and TraceCallEnd (A = callee, return value on stack top) bracket
///    unlogged calls.
///  * Halt terminates the process after the root frame returns.
enum class Op : uint8_t {
#define PPD_OPCODE_ENUM(Name) Name,
  PPD_BASE_OPCODES(PPD_OPCODE_ENUM)
#undef PPD_OPCODE_ENUM
};

/// Number of encodable opcodes.
constexpr unsigned NumOps = 0
#define PPD_OPCODE_COUNT(Name) +1
    PPD_BASE_OPCODES(PPD_OPCODE_COUNT)
#undef PPD_OPCODE_COUNT
    ;

/// Postlog flag bits.
enum PostlogFlags : uint32_t {
  PostlogExitsFunction = 1u << 0,
};

struct Instr {
  Op Opcode;
  int32_t A = 0;
  int32_t B = 0;
  int64_t Imm = 0;
};

/// Mnemonic for \p Opcode (e.g. "LoadLocal").
const char *opName(Op Opcode);

} // namespace ppd

#endif // PPD_BYTECODE_INSTR_H
