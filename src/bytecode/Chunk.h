//===- bytecode/Chunk.h - Code containers and disassembly -------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chunk holds one function's bytecode plus a pc → StmtId map used for
/// error attribution (a failing instruction must name the source statement,
/// since that statement becomes the root of the flowback session).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BYTECODE_CHUNK_H
#define PPD_BYTECODE_CHUNK_H

#include "bytecode/Instr.h"
#include "lang/Ast.h"

#include <cassert>
#include <string>
#include <vector>

namespace ppd {

class Chunk {
public:
  /// Appends \p I, tagged with the statement being compiled; returns its pc.
  uint32_t emit(Instr I, StmtId Stmt) {
    Code.push_back(I);
    Stmts.push_back(Stmt);
    return uint32_t(Code.size() - 1);
  }

  /// Patches the A operand (jump target) of the instruction at \p Pc.
  void patchA(uint32_t Pc, int32_t Value) {
    assert(Pc < Code.size() && "patch out of range");
    Code[Pc].A = Value;
  }

  const Instr &at(uint32_t Pc) const {
    assert(Pc < Code.size() && "pc out of range");
    return Code[Pc];
  }

  /// Source statement of the instruction at \p Pc (InvalidId for prologue
  /// code).
  StmtId stmtAt(uint32_t Pc) const {
    assert(Pc < Stmts.size() && "pc out of range");
    return Stmts[Pc];
  }

  uint32_t size() const { return uint32_t(Code.size()); }

  /// Human-readable listing, one instruction per line.
  std::string disassemble(const std::string &Name) const;

private:
  std::vector<Instr> Code;
  std::vector<StmtId> Stmts;
};

} // namespace ppd

#endif // PPD_BYTECODE_CHUNK_H
