//===- bytecode/Decoded.h - Pre-decoded instruction stream ------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded-execution fast path shared by the VM (vm/Machine.cpp) and
/// the emulation-package replay engine (core/Replay.cpp). A DecodedChunk
/// is produced once per function during the preparatory phase: the decoder
/// flattens a Chunk into an array of DecodedInstr with the statement id
/// inlined (no side-table lookup per step) and rewrites common adjacent
/// pairs into superinstructions:
///
///   * Cmp{Eq,Ne,Lt,Le,Gt,Ge} + JumpIf{False,True}  ->  JumpIfCmp
///   * PushConst + StoreLocal                        ->  StoreLocalImm
///
/// The layout is deliberately 1:1 with the source chunk — slot i decodes
/// pc i — which buys three invariants at once:
///
///   * jump targets need no remapping: a decoded index *is* a pc, so
///     EBlockInfo::EmuEntryPc and Process::Pc keep their meaning on both
///     the legacy and the decoded path;
///   * a jump that lands on the *second* instruction of a fused pair
///     executes it from its own (still fully decoded) slot;
///   * a superinstruction remains splittable: when the scheduler's
///     quantum or the global step budget has only one step left, the
///     interpreter executes just the first half (the compare / the push)
///     and leaves the pc on the second slot, so preemption points — and
///     therefore interleavings, sync sequence numbers, and the log bytes —
///     are bit-identical to the legacy one-instruction-at-a-time engine.
///
/// Fusion requires both instructions to carry the same statement id (the
/// breakpoint check fires on statement transitions, which must not be
/// skipped) and never involves instructions with side effects on the log.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_BYTECODE_DECODED_H
#define PPD_BYTECODE_DECODED_H

#include "bytecode/Chunk.h"
#include "bytecode/Instr.h"

#include <cstdint>
#include <vector>

namespace ppd {

/// Decoded opcodes: every base Op (same numeric value) plus the fused
/// superinstructions. Generated from the X-macro table, like Op.
enum class DOp : uint8_t {
#define PPD_OPCODE_ENUM(Name) Name,
  PPD_DECODED_OPCODES(PPD_OPCODE_ENUM)
#undef PPD_OPCODE_ENUM
};

/// Number of decoded opcodes (the dispatch-table size).
constexpr unsigned NumDecodedOps = 0
#define PPD_OPCODE_COUNT(Name) +1
    PPD_DECODED_OPCODES(PPD_OPCODE_COUNT)
#undef PPD_OPCODE_COUNT
    ;

/// Comparison kinds carried by Cmp* slots and JumpIfCmp (in Sub).
enum class CmpKind : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// One decoded slot. 24 bytes, one cache line per ~2.6 instructions.
struct DecodedInstr {
  DOp Opcode = DOp::Halt;
  /// Cmp*: the CmpKind. JumpIfCmp: (CmpKind << 1) | (1 = branch-on-true).
  uint8_t Sub = 0;
  /// Source statement, inlined from Chunk::stmtAt.
  StmtId Stmt = InvalidId;
  int32_t A = 0;
  int32_t B = 0;
  int64_t Imm = 0;
};

static_assert(sizeof(DecodedInstr) == 24, "keep the hot stream compact");

/// True for superinstructions (decode-time only; never in a Chunk).
inline bool isFused(DOp Opcode) {
  return Opcode == DOp::JumpIfCmp || Opcode == DOp::StoreLocalImm;
}

class DecodedChunk {
public:
  DecodedChunk() = default;

  /// Decodes \p C. Slot i corresponds to pc i of \p C.
  static DecodedChunk decode(const Chunk &C);

  const DecodedInstr *data() const { return Instrs.data(); }
  uint32_t size() const { return uint32_t(Instrs.size()); }
  bool empty() const { return Instrs.empty(); }

  const DecodedInstr &at(uint32_t Pc) const {
    assert(Pc < Instrs.size() && "decoded pc out of range");
    return Instrs[Pc];
  }

  /// Number of pairs rewritten into superinstructions.
  uint32_t fusedPairs() const { return FusedPairs; }

private:
  std::vector<DecodedInstr> Instrs;
  uint32_t FusedPairs = 0;
};

} // namespace ppd

#endif // PPD_BYTECODE_DECODED_H
