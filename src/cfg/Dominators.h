//===- cfg/Dominators.h - (Post)dominator trees -----------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees over a Cfg, computed with the
/// Cooper–Harvey–Kennedy iterative algorithm. Postdominators feed the
/// Ferrante–Ottenstein–Warren control-dependence construction the static
/// program dependence graph (§4.1) is built from.
///
/// Nodes that cannot reach the tree's root in the analysis direction (e.g.
/// statements of an infinite loop, for the postdominator tree) have no
/// immediate dominator; queries on them return InvalidId and dominates() is
/// false.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CFG_DOMINATORS_H
#define PPD_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <vector>

namespace ppd {

class DomTree {
public:
  /// Builds the dominator tree of \p G; with \p Post set, the postdominator
  /// tree (rooted at EXIT, over reversed edges).
  DomTree(const Cfg &G, bool Post);

  CfgNodeId root() const { return Root; }

  /// Immediate dominator of \p Node, or InvalidId for the root and for
  /// nodes unreachable in the analysis direction.
  CfgNodeId idom(CfgNodeId Node) const { return Idom[Node]; }

  /// Reflexive dominance test. False whenever either node is unreachable.
  bool dominates(CfgNodeId A, CfgNodeId B) const;

  /// Depth of \p Node below the root, or InvalidId if unreachable.
  uint32_t level(CfgNodeId Node) const { return Level[Node]; }

private:
  CfgNodeId Root;
  std::vector<CfgNodeId> Idom;  ///< indexed by node id.
  std::vector<uint32_t> Level;  ///< indexed by node id.
};

} // namespace ppd

#endif // PPD_CFG_DOMINATORS_H
