//===- cfg/Cfg.h - Control-flow graphs --------------------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow graphs over statements. One CFG node per
/// executable statement (structural BlockStmt nodes are skipped), plus
/// synthetic ENTRY and EXIT nodes — matching the ENTRY/EXIT nodes of the
/// paper's dependence graphs (§4.2). Branch successors carry true/false
/// labels so control-dependence edges can be labelled in graph output.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_CFG_CFG_H
#define PPD_CFG_CFG_H

#include "lang/Ast.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ppd {

/// Index of a node within one Cfg.
using CfgNodeId = uint32_t;

enum class CfgNodeKind { Entry, Exit, Stmt };

/// A labelled CFG edge endpoint. Label: -1 unconditional, 0 false branch,
/// 1 true branch.
struct CfgSucc {
  CfgNodeId Node;
  int Label;
};

struct CfgNode {
  CfgNodeKind Kind = CfgNodeKind::Stmt;
  StmtId Stmt = InvalidId; ///< valid for Kind == Stmt.
  std::vector<CfgSucc> Succs;
  std::vector<CfgNodeId> Preds;
};

/// The control-flow graph of one function.
class Cfg {
public:
  /// Builds the CFG of \p F; \p P supplies the statement table.
  Cfg(const Program &P, const FuncDecl &F);

  static constexpr CfgNodeId EntryId = 0;
  static constexpr CfgNodeId ExitId = 1;

  const CfgNode &node(CfgNodeId Id) const { return Nodes[Id]; }
  unsigned size() const { return unsigned(Nodes.size()); }
  const FuncDecl &func() const { return *F; }

  /// The CFG node for \p Id, or InvalidId if the statement is structural
  /// (BlockStmt) or belongs to another function.
  CfgNodeId nodeOf(StmtId Id) const {
    auto It = StmtToNode.find(Id);
    return It == StmtToNode.end() ? InvalidId : It->second;
  }

  /// Nodes in reverse post-order from ENTRY (unreachable nodes appended at
  /// the end so every node appears exactly once).
  const std::vector<CfgNodeId> &reversePostOrder() const { return Rpo; }

  /// Human-readable dump for tests: one line per node,
  /// `n3[s12] -> n4, n7(true)`.
  std::string dump(const Program &P) const;

private:
  /// A dangling edge awaiting its destination node.
  struct Pending {
    CfgNodeId From;
    int Label;
  };

  CfgNodeId addNode(CfgNodeKind Kind, StmtId Stmt);
  void connect(const std::vector<Pending> &Sources, CfgNodeId To);
  /// Wires \p S (and nested statements) after \p In; returns the dangling
  /// exits of S.
  std::vector<Pending> buildStmt(const Stmt &S, std::vector<Pending> In);
  void computeRpo();

  const Program &P;
  const FuncDecl *F;
  std::vector<CfgNode> Nodes;
  std::unordered_map<StmtId, CfgNodeId> StmtToNode;
  std::vector<CfgNodeId> Rpo;
};

} // namespace ppd

#endif // PPD_CFG_CFG_H
