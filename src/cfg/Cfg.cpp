//===- cfg/Cfg.cpp --------------------------------------------------------===//
//
// Part of PPD. See Cfg.h.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "lang/AstPrinter.h"

#include <algorithm>
#include <cassert>

using namespace ppd;

Cfg::Cfg(const Program &P, const FuncDecl &F) : P(P), F(&F) {
  CfgNodeId Entry = addNode(CfgNodeKind::Entry, InvalidId);
  CfgNodeId Exit = addNode(CfgNodeKind::Exit, InvalidId);
  assert(Entry == EntryId && Exit == ExitId && "synthetic nodes misplaced");
  (void)Entry;
  (void)Exit;

  std::vector<Pending> Dangling =
      buildStmt(*F.Body, {{EntryId, /*Label=*/-1}});
  connect(Dangling, ExitId);
  computeRpo();
}

CfgNodeId Cfg::addNode(CfgNodeKind Kind, StmtId Stmt) {
  CfgNodeId Id = CfgNodeId(Nodes.size());
  Nodes.push_back({Kind, Stmt, {}, {}});
  if (Stmt != InvalidId)
    StmtToNode[Stmt] = Id;
  return Id;
}

void Cfg::connect(const std::vector<Pending> &Sources, CfgNodeId To) {
  for (const Pending &Src : Sources) {
    Nodes[Src.From].Succs.push_back({To, Src.Label});
    Nodes[To].Preds.push_back(Src.From);
  }
}

std::vector<Cfg::Pending> Cfg::buildStmt(const Stmt &S,
                                         std::vector<Pending> In) {
  switch (S.getKind()) {
  case StmtKind::Block: {
    // Statements after a `return` still get (disconnected) nodes so that
    // the statement table and the CFG node space stay aligned; they simply
    // have no predecessors.
    for (const StmtPtr &Child : cast<BlockStmt>(&S)->Body)
      In = buildStmt(*Child, std::move(In));
    return In;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    CfgNodeId Cond = addNode(CfgNodeKind::Stmt, S.Id);
    connect(In, Cond);
    std::vector<Pending> ThenExits =
        buildStmt(*I->Then, {{Cond, /*Label=*/1}});
    std::vector<Pending> Out = std::move(ThenExits);
    if (I->Else) {
      std::vector<Pending> ElseExits =
          buildStmt(*I->Else, {{Cond, /*Label=*/0}});
      Out.insert(Out.end(), ElseExits.begin(), ElseExits.end());
    } else {
      Out.push_back({Cond, /*Label=*/0});
    }
    return Out;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(&S);
    CfgNodeId Cond = addNode(CfgNodeKind::Stmt, S.Id);
    connect(In, Cond);
    std::vector<Pending> BodyExits =
        buildStmt(*W->Body, {{Cond, /*Label=*/1}});
    connect(BodyExits, Cond); // back edge
    return {{Cond, /*Label=*/0}};
  }
  case StmtKind::For: {
    const auto *Fo = cast<ForStmt>(&S);
    if (Fo->Init)
      In = buildStmt(*Fo->Init, std::move(In));
    // The For node itself is the condition test; a constant-true loop when
    // Cond is null still gets the node (it reads nothing, always true).
    CfgNodeId Cond = addNode(CfgNodeKind::Stmt, S.Id);
    connect(In, Cond);
    std::vector<Pending> BodyExits =
        buildStmt(*Fo->Body, {{Cond, /*Label=*/1}});
    if (Fo->Step)
      BodyExits = buildStmt(*Fo->Step, std::move(BodyExits));
    connect(BodyExits, Cond); // back edge
    return {{Cond, /*Label=*/0}};
  }
  case StmtKind::Return: {
    CfgNodeId Node = addNode(CfgNodeKind::Stmt, S.Id);
    connect(In, Node);
    Nodes[Node].Succs.push_back({ExitId, -1});
    Nodes[ExitId].Preds.push_back(Node);
    return {}; // nothing dangles past a return
  }
  default: {
    // Straight-line statement.
    CfgNodeId Node = addNode(CfgNodeKind::Stmt, S.Id);
    connect(In, Node);
    return {{Node, /*Label=*/-1}};
  }
  }
}

void Cfg::computeRpo() {
  std::vector<bool> Visited(Nodes.size(), false);
  std::vector<CfgNodeId> PostOrder;
  PostOrder.reserve(Nodes.size());

  // Iterative DFS from ENTRY.
  std::vector<std::pair<CfgNodeId, size_t>> Stack;
  Stack.push_back({EntryId, 0});
  Visited[EntryId] = true;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Nodes[Node].Succs.size()) {
      CfgNodeId Succ = Nodes[Node].Succs[NextSucc++].Node;
      if (!Visited[Succ]) {
        Visited[Succ] = true;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    PostOrder.push_back(Node);
    Stack.pop_back();
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  // Append unreachable nodes (e.g. statements after a return) for
  // completeness; analyses may skip them but every node must appear.
  for (CfgNodeId Id = 0; Id != Nodes.size(); ++Id)
    if (!Visited[Id])
      Rpo.push_back(Id);
}

std::string Cfg::dump(const Program &P) const {
  std::string Out;
  for (CfgNodeId Id = 0; Id != Nodes.size(); ++Id) {
    const CfgNode &N = Nodes[Id];
    Out += "n" + std::to_string(Id);
    switch (N.Kind) {
    case CfgNodeKind::Entry:
      Out += "[ENTRY]";
      break;
    case CfgNodeKind::Exit:
      Out += "[EXIT]";
      break;
    case CfgNodeKind::Stmt:
      Out += "[" + AstPrinter::summarize(*P.stmt(N.Stmt)) + "]";
      break;
    }
    Out += " ->";
    for (const CfgSucc &S : N.Succs) {
      Out += " n" + std::to_string(S.Node);
      if (S.Label == 1)
        Out += "(true)";
      else if (S.Label == 0)
        Out += "(false)";
    }
    Out += '\n';
  }
  return Out;
}
