//===- cfg/Dominators.cpp -------------------------------------------------===//
//
// Part of PPD. See Dominators.h.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <cassert>

using namespace ppd;

namespace {

/// Direction-abstracted view of the CFG edges.
struct GraphView {
  const Cfg &G;
  bool Post;

  /// Edges pointing toward the root ("predecessors" in analysis space).
  std::vector<CfgNodeId> preds(CfgNodeId Node) const {
    std::vector<CfgNodeId> Out;
    if (!Post) {
      Out = G.node(Node).Preds;
    } else {
      for (const CfgSucc &S : G.node(Node).Succs)
        Out.push_back(S.Node);
    }
    return Out;
  }

  std::vector<CfgNodeId> succs(CfgNodeId Node) const {
    std::vector<CfgNodeId> Out;
    if (!Post) {
      for (const CfgSucc &S : G.node(Node).Succs)
        Out.push_back(S.Node);
    } else {
      Out = G.node(Node).Preds;
    }
    return Out;
  }
};

} // namespace

DomTree::DomTree(const Cfg &G, bool Post) {
  Root = Post ? Cfg::ExitId : Cfg::EntryId;
  unsigned N = G.size();
  Idom.assign(N, InvalidId);
  Level.assign(N, InvalidId);

  GraphView View{G, Post};

  // Reverse post-order from the root in analysis direction.
  std::vector<bool> Visited(N, false);
  std::vector<CfgNodeId> PostOrder;
  std::vector<std::pair<CfgNodeId, size_t>> Stack;
  std::vector<std::vector<CfgNodeId>> Succs(N);
  for (CfgNodeId Id = 0; Id != N; ++Id)
    Succs[Id] = View.succs(Id);

  Stack.push_back({Root, 0});
  Visited[Root] = true;
  while (!Stack.empty()) {
    auto &[Node, Next] = Stack.back();
    if (Next < Succs[Node].size()) {
      CfgNodeId S = Succs[Node][Next++];
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(Node);
    Stack.pop_back();
  }

  std::vector<CfgNodeId> Rpo(PostOrder.rbegin(), PostOrder.rend());
  std::vector<uint32_t> RpoIndex(N, InvalidId);
  for (unsigned I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  // Cooper–Harvey–Kennedy: iterate to fixpoint intersecting predecessor
  // dominators in RPO-index space.
  auto Intersect = [&](CfgNodeId A, CfgNodeId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[Root] = Root; // temporary self-loop eases Intersect
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (CfgNodeId Node : Rpo) {
      if (Node == Root)
        continue;
      CfgNodeId NewIdom = InvalidId;
      for (CfgNodeId Pred : View.preds(Node)) {
        if (!Visited[Pred] || Idom[Pred] == InvalidId)
          continue;
        NewIdom = NewIdom == InvalidId ? Pred : Intersect(Pred, NewIdom);
      }
      if (NewIdom != InvalidId && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
  Idom[Root] = InvalidId;

  // Levels for dominance queries: process in RPO so parents come first.
  Level[Root] = 0;
  for (CfgNodeId Node : Rpo) {
    if (Node == Root || Idom[Node] == InvalidId)
      continue;
    assert(Level[Idom[Node]] != InvalidId && "idom processed after child");
    Level[Node] = Level[Idom[Node]] + 1;
  }
}

bool DomTree::dominates(CfgNodeId A, CfgNodeId B) const {
  if (Level[A] == InvalidId || Level[B] == InvalidId)
    return false;
  while (Level[B] > Level[A])
    B = Idom[B];
  return A == B;
}
