//===- testing/Fuzzer.h - Differential fuzzing driver -----------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed loop behind `ppd fuzz`: generate a program per seed, run the
/// full oracle matrix (DiffOracles.h), stop at the first divergence, and
/// optionally shrink it with the delta-debugging minimizer. One seed is
/// one fully deterministic test case — program text, scheduling seed,
/// quantum, and process inputs all derive from it — so a failure report
/// is reproducible from its seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TESTING_FUZZER_H
#define PPD_TESTING_FUZZER_H

#include "testing/DiffOracles.h"
#include "testing/ProgramGen.h"

#include <functional>
#include <string>

namespace ppd::testing {

struct FuzzOptions {
  uint64_t Runs = 100;
  uint64_t FirstSeed = 1;
  /// Shrink the first failing program before reporting it.
  bool Minimize = true;
  DiffConfig Diff;
  /// Optional progress sink (one line per event); null = silent.
  std::function<void(const std::string &)> Log;
};

struct FuzzStats {
  uint64_t Runs = 0;
  uint64_t Completed = 0;
  uint64_t Deadlocks = 0;
  uint64_t Failures = 0; ///< runtime errors (division by zero, ...).
  uint64_t StepLimits = 0;
  uint64_t RacyRuns = 0;
  uint64_t TotalRaces = 0;
  uint64_t TotalIntervals = 0;
  uint64_t TotalSteps = 0;
  uint64_t ByProfile[6] = {};
};

struct FuzzResult {
  FuzzStats Stats;
  /// First divergence, if any.
  bool Failed = false;
  uint64_t FailingSeed = 0;
  GenProfile FailingProfile = GenProfile::Compute;
  DiffReport Report;
  std::string ReproSource;     ///< minimized when requested.
  std::string OriginalSource;  ///< the unminimized generated program.
  unsigned ReproStatements = 0;
  unsigned MinimizerCalls = 0;
};

/// Runs the differential fuzzing loop over seeds [FirstSeed,
/// FirstSeed + Runs); stops early at the first divergence.
FuzzResult runFuzz(const FuzzOptions &Options);

/// Human-readable run summary (outcome histogram, race/interval totals,
/// and the failure report when one was found).
std::string summarizeFuzz(const FuzzResult &Result);

} // namespace ppd::testing

#endif // PPD_TESTING_FUZZER_H
