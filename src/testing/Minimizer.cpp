//===- testing/Minimizer.cpp ----------------------------------------------===//
//
// Part of PPD. See Minimizer.h.
//
//===----------------------------------------------------------------------===//

#include "testing/Minimizer.h"

#include <algorithm>

using namespace ppd::testing;

namespace ppd::testing {

MinimizeResult minimizeProgram(const GenProgram &Program,
                               const FailPredicate &StillFails) {
  const std::vector<uint32_t> Order = Program.removableUnits();
  std::vector<bool> Removed(Program.Units.size(), false);
  std::string Cur = Program.render(&Removed);

  MinimizeResult Result;
  size_t Chunk = std::max<size_t>(1, Order.size() / 2);
  while (true) {
    bool Progress = false;
    std::vector<uint32_t> Alive;
    for (uint32_t U : Order)
      if (!Removed[U])
        Alive.push_back(U);

    for (size_t I = 0; I < Alive.size(); I += Chunk) {
      std::vector<bool> Trial = Removed;
      const size_t End = std::min(Alive.size(), I + Chunk);
      for (size_t J = I; J != End; ++J)
        Trial[Alive[J]] = true;
      std::string Rendered = Program.render(&Trial);
      if (Rendered == Cur) {
        // The whole chunk was inside already-removed subtrees: absorb it
        // without spending a predicate call.
        Removed = std::move(Trial);
        continue;
      }
      ++Result.PredicateCalls;
      if (StillFails(Rendered)) {
        Removed = std::move(Trial);
        Cur = std::move(Rendered);
        Progress = true;
      }
    }

    // Classic ddmin schedule: retry a productive granularity, halve an
    // unproductive one, stop at an unproductive single-unit pass.
    if (!Progress) {
      if (Chunk == 1)
        break;
      Chunk = std::max<size_t>(1, Chunk / 2);
    }
  }

  for (uint32_t U : Order)
    if (Removed[U])
      ++Result.UnitsRemoved;
  Result.Statements = GenProgram::countStatements(Cur);
  Result.Source = std::move(Cur);
  return Result;
}

} // namespace ppd::testing
