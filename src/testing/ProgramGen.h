//===- testing/ProgramGen.h - Random PPL program generator ------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Grammar-directed random PPL programs for the differential fuzzing
/// harness (`ppd fuzz`). One seed deterministically produces one program
/// plus the machine parameters (scheduling seed, quantum) to run it with.
///
/// Programs are generated as a tree of *units* — each unit owns its
/// opening lines, its closing lines, and removable child units — so the
/// delta-debugging minimizer can delete whole statements or subtrees and
/// always obtain a parseable rendering. Termination is guaranteed by
/// construction: every loop is a bounded `for` or a `while` whose counter
/// increment lives in the loop unit's non-removable tail; there is no
/// recursion. Blocking synchronization may legitimately deadlock — the
/// differential driver treats Deadlock/Failed/StepLimit as ordinary
/// outcomes that every pipeline must agree on.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TESTING_PROGRAMGEN_H
#define PPD_TESTING_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace ppd::testing {

/// One node of a generated program: Head lines, removable children, Tail
/// lines. Lines carry their own indentation; rendering is concatenation.
struct GenUnit {
  std::vector<std::string> Head;
  std::vector<std::string> Tail;
  std::vector<uint32_t> Children;
  bool Removable = false;
};

/// What flavor of program a seed produces. Profiles weight the grammar
/// toward different subsystems: pure computation (engines, replay),
/// semaphore traffic (unit logs, sync edges), deliberate races (race
/// detection, §5.5 validity), opposite lock orders (deadlock analysis),
/// and channel pipelines (send/recv partner matching), plus a mixed
/// multi-process shape reserved for the streamed-ingest oracle (random
/// section thresholds make its cut boundaries land everywhere).
enum class GenProfile : uint8_t {
  Compute,
  SyncHeavy,
  Racy,
  DeadlockProne,
  Channels,
  Streamed,
};

const char *genProfileName(GenProfile Profile);

struct GenProgram {
  std::vector<GenUnit> Units; ///< Units[0] is the root.
  GenProfile Profile = GenProfile::Compute;
  /// Machine parameters this case runs with (derived from the seed).
  uint64_t SchedSeed = 1;
  uint32_t Quantum = 8;
  /// True when the program spawns processes.
  bool MultiProcess = false;

  /// Appends a unit, returning its index.
  uint32_t addUnit(GenUnit Unit) {
    Units.push_back(std::move(Unit));
    return uint32_t(Units.size() - 1);
  }

  /// Renders the program text. With \p Removed (indexed by unit), removed
  /// units and their entire subtrees are omitted.
  std::string render(const std::vector<bool> *Removed = nullptr) const;

  /// Indices of all removable units, in pre-order.
  std::vector<uint32_t> removableUnits() const;

  /// Number of statement lines in a rendering (declarations, assignments,
  /// control headers, sync ops) — the size metric minimized repros are
  /// reported in.
  static unsigned countStatements(const std::string &Source);
};

struct GenOptions {
  GenProfile Profile = GenProfile::Compute;
  /// Approximate number of body statements across all functions.
  unsigned StmtBudget = 22;
  unsigned MaxDepth = 3;
};

/// Deterministic seed → program. Profile, quantum, and scheduling seed are
/// all derived from \p Seed.
GenProgram generateProgram(uint64_t Seed);

/// As above with an explicit grammar profile.
GenProgram generateProgram(uint64_t Seed, const GenOptions &Options);

} // namespace ppd::testing

#endif // PPD_TESTING_PROGRAMGEN_H
