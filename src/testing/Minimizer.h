//===- testing/Minimizer.h - Delta-debugging repro reduction ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta debugging over a generated program's unit tree. The
/// generator marks which units (statements, whole control subtrees) may be
/// deleted without breaking parseability or termination; the minimizer
/// searches for the smallest removal mask under which the failure
/// predicate still holds, chunk-wise first (ddmin-style halving) and then
/// one unit at a time until a fixpoint.
///
/// The predicate receives rendered source; callers bind it to "still
/// compiles and still trips the same oracle", so shrinking can neither
/// wander to a different bug nor produce an unparseable repro.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TESTING_MINIMIZER_H
#define PPD_TESTING_MINIMIZER_H

#include "testing/ProgramGen.h"

#include <functional>
#include <string>

namespace ppd::testing {

/// True when the rendered program still exhibits the failure being
/// minimized.
using FailPredicate = std::function<bool(const std::string &Source)>;

struct MinimizeResult {
  std::string Source;       ///< smallest failing rendering found.
  unsigned Statements = 0;  ///< GenProgram::countStatements of Source.
  unsigned UnitsRemoved = 0;
  unsigned PredicateCalls = 0;
};

/// Shrinks \p Program to a smaller rendering for which \p StillFails
/// holds. \p StillFails is assumed true for the unmodified program.
MinimizeResult minimizeProgram(const GenProgram &Program,
                               const FailPredicate &StillFails);

} // namespace ppd::testing

#endif // PPD_TESTING_MINIMIZER_H
