//===- testing/DiffOracles.cpp --------------------------------------------===//
//
// Part of PPD. See DiffOracles.h.
//
//===----------------------------------------------------------------------===//

#include "testing/DiffOracles.h"

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "core/DeadlockAnalyzer.h"
#include "core/DebugSession.h"
#include "core/Replay.h"
#include "core/ReplayService.h"
#include "log/BufferPool.h"
#include "log/ExecutionLog.h"
#include "log/LogIO.h"
#include "log/PageStore.h"
#include "pardyn/ParallelDynamicGraph.h"
#include "pardyn/RaceDetector.h"
#include "log/ProgramDb.h"
#include "server/DebugServer.h"
#include "server/Protocol.h"
#include "stream/Ingest.h"
#include "stream/StreamClient.h"
#include "support/Rng.h"
#include "vm/Jit.h"
#include "vm/Machine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <tuple>
#include <unistd.h>

using namespace ppd;
using namespace ppd::testing;

namespace {

//===----------------------------------------------------------------------===//
// One machine run, with everything the oracles compare captured by value.
//===----------------------------------------------------------------------===//

struct Observed {
  RunResult Result;
  std::vector<int64_t> Shared;
  std::vector<OutputRecord> Output;
  std::vector<TraceBuffer> Traces;
  std::vector<std::vector<int64_t>> Privates;
  std::vector<uint8_t> Statuses;
  ExecutionLog Log;
};

Observed runOnce(const CompiledProgram &Prog, const MachineOptions &Opts) {
  Machine M(Prog, Opts);
  Observed Obs;
  Obs.Result = M.run();
  Obs.Shared = M.sharedMemory();
  Obs.Output = M.output();
  Obs.Traces = M.traces();
  for (const Process &P : M.processes()) {
    Obs.Privates.push_back(P.PrivateGlobals);
    Obs.Statuses.push_back(uint8_t(P.Status));
  }
  Obs.Log = M.takeLog();
  return Obs;
}

MachineOptions baseOptions(uint64_t SchedSeed, uint32_t Quantum,
                           const DiffConfig &Config) {
  MachineOptions Opts;
  Opts.Seed = SchedSeed;
  Opts.Quantum = Quantum;
  Opts.MaxSteps = Config.MaxSteps;
  // Inputs derived from the scheduling seed: plenty of streams so spawned
  // processes never run dry, values small enough to keep arithmetic tame.
  Rng InputRng(SchedSeed ^ 0x9e3779b97f4a7c15ull);
  Opts.ProcessInputs.resize(8);
  for (auto &Stream : Opts.ProcessInputs)
    for (int I = 0; I != 16; ++I)
      Stream.push_back(int64_t(InputRng.nextBelow(97)));
  return Opts;
}

//===----------------------------------------------------------------------===//
// Field-wise comparisons. Every cmp* returns "" on agreement or a message
// naming the first mismatching field — the Detail of a DiffReport.
//===----------------------------------------------------------------------===//

std::string fmtErr(const RuntimeError &E) {
  std::ostringstream Os;
  Os << runtimeErrorName(E.Kind) << " pid=" << E.Pid << " stmt=" << E.Stmt;
  return Os.str();
}

std::string cmpOutput(const std::vector<OutputRecord> &A,
                      const std::vector<OutputRecord> &B) {
  if (A.size() != B.size())
    return "output count " + std::to_string(A.size()) + " vs " +
           std::to_string(B.size());
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Pid != B[I].Pid || A[I].Value != B[I].Value ||
        A[I].Stmt != B[I].Stmt)
      return "output[" + std::to_string(I) + "] (" +
             std::to_string(A[I].Pid) + "," + std::to_string(A[I].Value) +
             ",s" + std::to_string(A[I].Stmt) + ") vs (" +
             std::to_string(B[I].Pid) + "," + std::to_string(B[I].Value) +
             ",s" + std::to_string(B[I].Stmt) + ")";
  return {};
}

std::string cmpI64Vec(const char *What, const std::vector<int64_t> &A,
                      const std::vector<int64_t> &B) {
  if (A == B)
    return {};
  std::ostringstream Os;
  Os << What << " differs (size " << A.size() << " vs " << B.size() << ")";
  for (size_t I = 0; I != std::min(A.size(), B.size()); ++I)
    if (A[I] != B[I]) {
      Os << ": [" << I << "] " << A[I] << " vs " << B[I];
      break;
    }
  return Os.str();
}

/// Outcome, error, and observable state; \p CompareSteps additionally
/// demands identical step counts (same-chunk comparisons only).
std::string cmpRunPair(const Observed &A, const Observed &B,
                       bool CompareSteps) {
  if (A.Result.Outcome != B.Result.Outcome)
    return "outcome " + std::to_string(int(A.Result.Outcome)) + " vs " +
           std::to_string(int(B.Result.Outcome));
  if (A.Result.Error.Kind != B.Result.Error.Kind ||
      A.Result.Error.Pid != B.Result.Error.Pid ||
      A.Result.Error.Stmt != B.Result.Error.Stmt)
    return "error " + fmtErr(A.Result.Error) + " vs " +
           fmtErr(B.Result.Error);
  if (A.Result.BreakPid != B.Result.BreakPid ||
      A.Result.BreakStmt != B.Result.BreakStmt)
    return "breakpoint position differs";
  if (CompareSteps && A.Result.Steps != B.Result.Steps)
    return "steps " + std::to_string(A.Result.Steps) + " vs " +
           std::to_string(B.Result.Steps);
  if (auto D = cmpI64Vec("shared", A.Shared, B.Shared); !D.empty())
    return D;
  if (auto D = cmpOutput(A.Output, B.Output); !D.empty())
    return D;
  if (A.Statuses != B.Statuses)
    return "process statuses differ (" + std::to_string(A.Statuses.size()) +
           " vs " + std::to_string(B.Statuses.size()) + " procs)";
  if (A.Privates.size() != B.Privates.size())
    return "private-global segment count differs";
  for (size_t P = 0; P != A.Privates.size(); ++P)
    if (auto D = cmpI64Vec("private globals", A.Privates[P], B.Privates[P]);
        !D.empty())
      return "pid " + std::to_string(P) + ": " + D;
  return {};
}

std::string cmpTraces(const std::vector<TraceBuffer> &A,
                      const std::vector<TraceBuffer> &B) {
  if (A.size() != B.size())
    return "trace count " + std::to_string(A.size()) + " vs " +
           std::to_string(B.size());
  for (size_t P = 0; P != A.size(); ++P) {
    const auto &EA = A[P].Events, &EB = B[P].Events;
    if (EA.size() != EB.size())
      return "pid " + std::to_string(P) + " event count " +
             std::to_string(EA.size()) + " vs " + std::to_string(EB.size());
    for (size_t I = 0; I != EA.size(); ++I)
      if (!(EA[I] == EB[I]))
        return "pid " + std::to_string(P) + " event " + std::to_string(I) +
               " differs (stmt s" + std::to_string(EA[I].Stmt) + " vs s" +
               std::to_string(EB[I].Stmt) + ")";
  }
  return {};
}

std::string cmpRecord(const LogRecord &A, const LogRecord &B) {
  if (A.Kind != B.Kind)
    return "kind";
  if (A.Id != B.Id)
    return "id";
  if (A.Flags != B.Flags)
    return "flags";
  if (A.Value != B.Value)
    return "value";
  if (A.Seq != B.Seq)
    return "seq";
  if (A.PartnerSeq != B.PartnerSeq)
    return "partner";
  if (A.Sync != B.Sync)
    return "sync kind";
  if (A.Stmt != B.Stmt)
    return "stmt";
  if (A.Vars.size() != B.Vars.size())
    return "var count";
  for (size_t V = 0; V != A.Vars.size(); ++V) {
    if (A.Vars[V].Var != B.Vars[V].Var)
      return "var id";
    if (A.Vars[V].Values.size() != B.Vars[V].Values.size())
      return "var width";
    for (size_t E = 0; E != A.Vars[V].Values.size(); ++E)
      if (A.Vars[V].Values[E] != B.Vars[V].Values[E])
        return "var value";
  }
  auto CmpSet = [](const SmallVec<uint32_t, 4> &X,
                   const SmallVec<uint32_t, 4> &Y) {
    if (X.size() != Y.size())
      return false;
    for (size_t I = 0; I != X.size(); ++I)
      if (X[I] != Y[I])
        return false;
    return true;
  };
  if (!CmpSet(A.ReadSet, B.ReadSet))
    return "read set";
  if (!CmpSet(A.WriteSet, B.WriteSet))
    return "write set";
  return {};
}

std::string cmpLogs(const ExecutionLog &A, const ExecutionLog &B) {
  if (A.Procs.size() != B.Procs.size())
    return "process count " + std::to_string(A.Procs.size()) + " vs " +
           std::to_string(B.Procs.size());
  for (size_t P = 0; P != A.Procs.size(); ++P) {
    const ProcessLog &PA = A.Procs[P], &PB = B.Procs[P];
    if (PA.Pid != PB.Pid || PA.RootFunc != PB.RootFunc ||
        PA.Args != PB.Args || PA.PrelogCount != PB.PrelogCount)
      return "pid " + std::to_string(P) + " header differs";
    if (PA.Records.size() != PB.Records.size())
      return "pid " + std::to_string(P) + " record count " +
             std::to_string(PA.Records.size()) + " vs " +
             std::to_string(PB.Records.size());
    for (size_t R = 0; R != PA.Records.size(); ++R)
      if (auto D = cmpRecord(PA.Records[R], PB.Records[R]); !D.empty())
        return "pid " + std::to_string(P) + " record " + std::to_string(R) +
               ": " + D + " differs";
  }
  return cmpOutput(A.Output, B.Output);
}

std::string cmpMismatches(const std::vector<ReplayMismatch> &A,
                          const std::vector<ReplayMismatch> &B) {
  if (A.size() != B.size())
    return "postlog-mismatch count differs";
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Var != B[I].Var || A[I].Index != B[I].Index ||
        A[I].Expected != B[I].Expected || A[I].Actual != B[I].Actual)
      return "postlog mismatch " + std::to_string(I) + " differs";
  return {};
}

std::string cmpReplay(const ReplayResult &A, const ReplayResult &B) {
  if (A.Ok != B.Ok)
    return std::string("ok ") + (A.Ok ? "true" : "false") + " vs " +
           (B.Ok ? "true" : "false");
  if (A.Partial != B.Partial)
    return "partial flag differs";
  if (A.FailureHit != B.FailureHit)
    return "failure-hit flag differs";
  if (A.FailureHit && (A.Failure.Kind != B.Failure.Kind ||
                       A.Failure.Pid != B.Failure.Pid ||
                       A.Failure.Stmt != B.Failure.Stmt))
    return "failure " + fmtErr(A.Failure) + " vs " + fmtErr(B.Failure);
  if (A.Diverged != B.Diverged)
    return "diverged flag differs";
  if (A.Error != B.Error)
    return "error '" + A.Error + "' vs '" + B.Error + "'";
  if (auto D = cmpMismatches(A.PostlogMismatches, B.PostlogMismatches);
      !D.empty())
    return D;
  if (A.Instructions != B.Instructions)
    return "instructions " + std::to_string(A.Instructions) + " vs " +
           std::to_string(B.Instructions);
  if (A.Events.Events.size() != B.Events.Events.size())
    return "event count " + std::to_string(A.Events.Events.size()) +
           " vs " + std::to_string(B.Events.Events.size());
  for (size_t I = 0; I != A.Events.Events.size(); ++I)
    if (!(A.Events.Events[I] == B.Events.Events[I]))
      return "event " + std::to_string(I) + " differs";
  if (auto D = cmpI64Vec("shared", A.Shared, B.Shared); !D.empty())
    return D;
  if (auto D = cmpI64Vec("private globals", A.PrivateGlobals,
                         B.PrivateGlobals);
      !D.empty())
    return D;
  if (auto D = cmpI64Vec("root slots", A.RootSlots, B.RootSlots); !D.empty())
    return D;
  if (auto D = cmpOutput(A.Output, B.Output); !D.empty())
    return D;
  if (A.HasReturn != B.HasReturn || A.ReturnValue != B.ReturnValue)
    return "return value differs";
  return {};
}

//===----------------------------------------------------------------------===//
// Independent race recheck: happens-before as explicit BFS-free transitive
// closure over (intra-process, partner) edges read straight from the raw
// log — sharing no code with ParallelDynamicGraph's vector clocks.
//===----------------------------------------------------------------------===//

using RaceTuple =
    std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t, uint8_t>;

RaceTuple tupleOf(const Race &R) {
  return {R.SharedIdx, R.First.Pid, R.First.EndNode, R.Second.Pid,
          R.Second.EndNode, uint8_t(R.Kind)};
}

/// Returns false (with \p Err set) only on an internal inconsistency in
/// the log (dangling partner); otherwise fills \p Out with the race set.
bool recheckRaces(const ExecutionLog &Log, unsigned NumShared,
                  std::vector<RaceTuple> &Out, std::string &Err) {
  struct RNode {
    uint64_t Seq = 0;
    uint64_t Partner = NoPartner;
    std::vector<uint32_t> Reads, Writes; ///< of the edge ending here.
  };
  std::vector<std::vector<RNode>> Sync(Log.Procs.size());
  size_t Total = 0;
  uint64_t MaxSeq = 0;
  for (size_t P = 0; P != Log.Procs.size(); ++P) {
    for (const LogRecord &R : Log.Procs[P].Records) {
      if (R.Kind != LogRecordKind::SyncEvent)
        continue;
      RNode N;
      N.Seq = R.Seq;
      N.Partner = R.PartnerSeq;
      N.Reads.assign(R.ReadSet.begin(), R.ReadSet.end());
      N.Writes.assign(R.WriteSet.begin(), R.WriteSet.end());
      MaxSeq = std::max(MaxSeq, R.Seq);
      Sync[P].push_back(std::move(N));
      ++Total;
    }
  }
  // Word-packed transitive closure, filled in global Seq order (every
  // edge — intra-process successor and partner→node — raises Seq, so Seq
  // order is topological). Generated programs stay far below this bound;
  // it guards the quadratic bitset against pathological inputs.
  if (Total > 8000) {
    Err = "recheck skipped: " + std::to_string(Total) + " sync nodes";
    return false;
  }
  std::vector<std::pair<uint32_t, uint32_t>> BySeq(size_t(MaxSeq) + 1,
                                                   {InvalidId, InvalidId});
  std::vector<std::vector<uint32_t>> IdOf(Sync.size());
  uint32_t Next = 0;
  for (uint32_t P = 0; P != Sync.size(); ++P)
    for (uint32_t K = 0; K != Sync[P].size(); ++K) {
      if (Sync[P][K].Seq >= BySeq.size())
        BySeq.resize(Sync[P][K].Seq + 1, {InvalidId, InvalidId});
      BySeq[Sync[P][K].Seq] = {P, K};
      IdOf[P].push_back(Next++);
    }
  const size_t Words = (Total + 63) / 64;
  std::vector<uint64_t> Reach(Total * Words, 0); ///< Reach[n]: ancestors.
  auto RowOf = [&](uint32_t Id) { return Reach.data() + size_t(Id) * Words; };
  auto Merge = [&](uint64_t *Row, uint32_t Pred) {
    const uint64_t *From = RowOf(Pred);
    for (size_t W = 0; W != Words; ++W)
      Row[W] |= From[W];
    Row[Pred / 64] |= uint64_t(1) << (Pred % 64);
  };
  for (const auto &[P, K] : BySeq) {
    if (P == InvalidId)
      continue;
    uint64_t *Row = RowOf(IdOf[P][K]);
    if (K > 0)
      Merge(Row, IdOf[P][K - 1]);
    uint64_t Partner = Sync[P][K].Partner;
    if (Partner != NoPartner) {
      if (Partner >= BySeq.size() || BySeq[Partner].first == InvalidId) {
        Err = "dangling partner seq " + std::to_string(Partner);
        return false;
      }
      auto [PP, PK] = BySeq[Partner];
      Merge(Row, IdOf[PP][PK]);
    }
  }
  auto Before = [&](uint32_t A, uint32_t B) { // A happens-before B
    return (RowOf(B)[A / 64] >> (A % 64)) & 1;
  };

  // Def 6.1 over edges: e → e' iff end(e) → start(e'); simultaneous iff
  // neither. Edge k of process P spans nodes k-1 → k; its sets live on
  // node k's record. Classification mirrors Def 6.3: write/write wins,
  // read/write reported once per (pair, variable).
  auto Contains = [](const std::vector<uint32_t> &V, uint32_t S) {
    return std::find(V.begin(), V.end(), S) != V.end();
  };
  for (uint32_t PA = 0; PA != Sync.size(); ++PA) {
    for (uint32_t PB = PA + 1; PB != Sync.size(); ++PB) {
      for (uint32_t KA = 1; KA < Sync[PA].size(); ++KA) {
        for (uint32_t KB = 1; KB < Sync[PB].size(); ++KB) {
          const RNode &A = Sync[PA][KA], &B = Sync[PB][KB];
          if (A.Reads.empty() && A.Writes.empty())
            continue;
          if (B.Reads.empty() && B.Writes.empty())
            continue;
          bool AThenB = Before(IdOf[PA][KA], IdOf[PB][KB - 1]) ||
                        IdOf[PA][KA] == IdOf[PB][KB - 1];
          bool BThenA = Before(IdOf[PB][KB], IdOf[PA][KA - 1]) ||
                        IdOf[PB][KB] == IdOf[PA][KA - 1];
          if (AThenB || BThenA)
            continue; // ordered, not simultaneous.
          for (uint32_t S = 0; S != NumShared; ++S) {
            bool WW = Contains(A.Writes, S) && Contains(B.Writes, S);
            bool RW = !WW && ((Contains(A.Reads, S) && Contains(B.Writes, S)) ||
                              (Contains(A.Writes, S) && Contains(B.Reads, S)));
            if (WW)
              Out.push_back({S, PA, KA, PB, KB, uint8_t(RaceKind::WriteWrite)});
            else if (RW)
              Out.push_back({S, PA, KA, PB, KB, uint8_t(RaceKind::ReadWrite)});
          }
        }
      }
    }
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return true;
}

std::atomic<uint64_t> TempCounter{0};

} // namespace

namespace ppd::testing {

DiffReport runDifferential(const std::string &Source, uint64_t SchedSeed,
                           uint32_t Quantum, const DiffConfig &Config) {
  DiffReport Report;
  auto Fail = [&](std::string Oracle, std::string Detail) {
    Report.Divergent = true;
    Report.Oracle = std::move(Oracle);
    Report.Detail = std::move(Detail);
    return Report;
  };

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog)
    return Fail("compile", Diags.str());

  const MachineOptions Base = baseOptions(SchedSeed, Quantum, Config);

  //===--- engine/*: decoded vs legacy interpreter, per mode -------------===//
  const RunMode Modes[3] = {RunMode::Plain, RunMode::Logging,
                            RunMode::FullTrace};
  const char *ModeNames[3] = {"plain", "logging", "fulltrace"};
  Observed Runs[3][2]; // [mode][0 = decoded, 1 = legacy]
  for (int M = 0; M != 3; ++M)
    for (int E = 0; E != 2; ++E) {
      MachineOptions Opts = Base;
      Opts.Mode = Modes[M];
      Opts.UseDecoded = E == 0;
      Runs[M][E] = runOnce(*Prog, Opts);
    }
  for (int M = 0; M != 3; ++M) {
    if (auto D = cmpRunPair(Runs[M][0], Runs[M][1], /*CompareSteps=*/true);
        !D.empty())
      return Fail(std::string("engine/") + ModeNames[M], D);
    if (auto D = cmpLogs(Runs[M][0].Log, Runs[M][1].Log); !D.empty())
      return Fail(std::string("engine/") + ModeNames[M] + "-log", D);
  }
  if (auto D = cmpTraces(Runs[2][0].Traces, Runs[2][1].Traces); !D.empty())
    return Fail("engine/fulltrace-traces", D);

  //===--- mode/*: instrumentation must not perturb execution ------------===//
  // Plain and Logging share the object chunk: identical interleavings,
  // identical everything. FullTrace runs the emulation chunk, which shifts
  // preemption points — strict comparison only for single-process runs.
  if (auto D = cmpRunPair(Runs[0][0], Runs[1][0], /*CompareSteps=*/true);
      !D.empty())
    return Fail("mode/plain-vs-logging", D);
  const Observed &Ref = Runs[1][0]; // the decoded Logging run.
  const ExecutionLog &L = Ref.Log;
  if (L.Procs.size() == 1)
    if (auto D = cmpRunPair(Ref, Runs[2][0], /*CompareSteps=*/false);
        !D.empty())
      return Fail("mode/logging-vs-fulltrace", D);

  Report.Outcome = int(Ref.Result.Outcome);
  Report.Steps = Ref.Result.Steps;

  //===--- log/*: v1/v2 save → load → re-save round trips ----------------===//
  for (LogFormat Fmt : {LogFormat::V1, LogFormat::V2}) {
    const char *FmtName = Fmt == LogFormat::V1 ? "v1" : "v2";
    std::string Path = Config.TempDir + "/ppd_fuzz_" +
                       std::to_string(uint64_t(::getpid())) + "_" +
                       std::to_string(TempCounter.fetch_add(1)) + "." +
                       FmtName + ".ppdlog";
    std::string Err, ErrOracle;
    std::vector<uint8_t> First, Second;
    ExecutionLog Loaded;
    if (!L.save(Path, Fmt)) {
      ErrOracle = "save";
      Err = "save failed";
    } else if (!readFileBytes(Path, First)) {
      ErrOracle = "save";
      Err = "saved file unreadable";
    } else if (!ExecutionLog::load(Path, Loaded)) {
      ErrOracle = "load";
      Err = "load failed on a fresh save";
    } else if (auto D = cmpLogs(L, Loaded); !D.empty()) {
      ErrOracle = "load";
      Err = D;
    } else if (!Loaded.save(Path, Fmt) || !readFileBytes(Path, Second)) {
      ErrOracle = "resave";
      Err = "re-save failed";
    } else if (First != Second) {
      ErrOracle = "resave";
      Err = "re-saved bytes differ (size " + std::to_string(First.size()) +
            " vs " + std::to_string(Second.size()) + ")";
    } else {
      // The loaded log must index identically.
      LogIndex IA(L), IB(Loaded);
      for (uint32_t P = 0; Err.empty() && P != L.Procs.size(); ++P) {
        const auto &VA = IA.intervals(P), &VB = IB.intervals(P);
        if (VA.size() != VB.size()) {
          ErrOracle = "index";
          Err = "pid " + std::to_string(P) + " interval count differs";
          break;
        }
        for (size_t I = 0; I != VA.size(); ++I)
          if (VA[I].Index != VB[I].Index || VA[I].EBlock != VB[I].EBlock ||
              VA[I].PrelogRecord != VB[I].PrelogRecord ||
              VA[I].PostlogRecord != VB[I].PostlogRecord ||
              VA[I].Parent != VB[I].Parent || VA[I].Depth != VB[I].Depth ||
              VA[I].ExitsFunction != VB[I].ExitsFunction) {
            ErrOracle = "index";
            Err = "pid " + std::to_string(P) + " interval " +
                  std::to_string(I) + " differs";
            break;
          }
      }
    }
    std::remove(Path.c_str());
    if (!Err.empty())
      return Fail(std::string("log/") + FmtName + "-" + ErrOracle, Err);
  }

  //===--- race/*: two algorithms and an independent recheck -------------===//
  const unsigned NumShared = Prog->Symbols->NumSharedVars;
  ParallelDynamicGraph PDG(L, NumShared);
  RaceDetector Detector(PDG, *Prog->Symbols);
  RaceDetectionResult Naive = Detector.detect(RaceAlgorithm::NaiveAllPairs);
  RaceDetectionResult Indexed = Detector.detect(RaceAlgorithm::VarIndexed);
  RaceDetectionResult Vec = Detector.detect(RaceAlgorithm::Vectorized);
  if (Naive.Races.size() != Indexed.Races.size())
    return Fail("race/algorithms",
                "NaiveAllPairs found " + std::to_string(Naive.Races.size()) +
                    ", VarIndexed " + std::to_string(Indexed.Races.size()));
  if (Naive.Races.size() != Vec.Races.size())
    return Fail("race/algorithms",
                "NaiveAllPairs found " + std::to_string(Naive.Races.size()) +
                    ", Vectorized " + std::to_string(Vec.Races.size()));
  for (size_t I = 0; I != Naive.Races.size(); ++I) {
    if (!(Naive.Races[I] == Indexed.Races[I]))
      return Fail("race/algorithms",
                  "race " + std::to_string(I) + " differs between algorithms");
    if (!(Naive.Races[I] == Vec.Races[I]))
      return Fail("race/algorithms", "race " + std::to_string(I) +
                                         " differs from the vectorized tier");
  }
  {
    std::vector<RaceTuple> Rechecked, Detected;
    std::string Err;
    if (recheckRaces(L, NumShared, Rechecked, Err)) {
      for (const Race &R : Naive.Races)
        Detected.push_back(tupleOf(R));
      if (Detected != Rechecked) {
        auto Describe = [](const std::vector<RaceTuple> &V) {
          std::string S = std::to_string(V.size()) + " races";
          for (size_t I = 0; I != std::min<size_t>(V.size(), 4); ++I)
            S += " (s" + std::to_string(std::get<0>(V[I])) + " p" +
                 std::to_string(std::get<1>(V[I])) + "e" +
                 std::to_string(std::get<2>(V[I])) + "/p" +
                 std::to_string(std::get<3>(V[I])) + "e" +
                 std::to_string(std::get<4>(V[I])) + ")";
          return S;
        };
        return Fail("race/recheck", "detector: " + Describe(Detected) +
                                        "; recheck: " + Describe(Rechecked));
      }
    }
  }
  Report.RaceFree = Naive.Races.empty();
  Report.Races = unsigned(Naive.Races.size());

  //===--- replay/*: serial engines, memoized, parallel, cached ----------===//
  LogIndex Index(L);
  std::vector<ParallelReplayer::IntervalRef> Refs;
  for (uint32_t P = 0; P != L.Procs.size(); ++P)
    for (const LogInterval &IV : Index.intervals(P))
      Refs.push_back({P, IV.Index});
  Report.Intervals = unsigned(Refs.size());
  // Bound the quadratic-ish replay matrix on degenerate inputs; generated
  // programs sit far below this.
  if (Refs.size() > 2000)
    Refs.resize(2000);

  ReplayEngine Engine(*Prog);
  // The JIT leg tiers up immediately (threshold 1) so every interval takes
  // the native path on its first replay; null on hosts without the
  // backend, where the leg degrades to re-checking the decoded tier.
  JitOptions HotNow;
  HotNow.HotThreshold = 1;
  std::shared_ptr<JitProgram> HotJit = JitProgram::create(*Prog, HotNow);
  ReplayEngine JitEngine(*Prog, HotJit);
  std::vector<ReplayResult> Reference;
  Reference.reserve(Refs.size());
  for (const auto &[P, IVIdx] : Refs) {
    const LogInterval &IV = Index.intervals(P)[IVIdx];
    ReplayOptions Dec, Leg, Jit;
    Dec.Engine = ReplayEngineKind::Decoded;
    Leg.Engine = ReplayEngineKind::Legacy;
    Jit.Engine = ReplayEngineKind::Jit;
    ReplayResult RD = Engine.replay(L, P, IV, Dec);
    ReplayResult RL = Engine.replay(L, P, IV, Leg);
    ReplayResult RJ = JitEngine.replay(L, P, IV, Jit);
    if (auto D = cmpReplay(RD, RL); !D.empty())
      return Fail("replay/engines", "pid " + std::to_string(P) +
                                        " interval " + std::to_string(IVIdx) +
                                        ": " + D);
    if (auto D = cmpReplay(RD, RJ); !D.empty())
      return Fail("replay/jit", "pid " + std::to_string(P) + " interval " +
                                    std::to_string(IVIdx) + ": " + D);
    // §5.5: on a race-free instance every closed interval replays
    // faithfully and verifies its postlog exactly.
    if (Report.RaceFree && IV.PostlogRecord != InvalidId) {
      if (!RD.Ok || RD.Partial || !RD.PostlogMismatches.empty() ||
          RD.Diverged)
        return Fail("replay/verify",
                    "pid " + std::to_string(P) + " interval " +
                        std::to_string(IVIdx) + ": ok=" +
                        std::to_string(RD.Ok) + " partial=" +
                        std::to_string(RD.Partial) + " mismatches=" +
                        std::to_string(RD.PostlogMismatches.size()) +
                        (RD.Error.empty() ? "" : " error=" + RD.Error));
    }
    Reference.push_back(std::move(RD));
  }

  {
    ReplayServiceOptions SerialOpts;
    SerialOpts.Threads = 0;
    ParallelReplayer Serial(*Prog, L, Index, SerialOpts);
    for (size_t I = 0; I != Refs.size(); ++I) {
      auto R = Serial.get(Refs[I].first, Refs[I].second);
      if (!R)
        return Fail("replay/service", "serial get returned null");
      if (auto D = cmpReplay(*R, Reference[I]); !D.empty())
        return Fail("replay/service",
                    "pid " + std::to_string(Refs[I].first) + " interval " +
                        std::to_string(Refs[I].second) + ": " + D);
      auto Again = Serial.get(Refs[I].first, Refs[I].second);
      if (!Again || !(cmpReplay(*Again, Reference[I]).empty()))
        return Fail("replay/cache", "cached re-read differs from original");
    }

    ReplayServiceOptions ParOpts;
    ParOpts.Threads = Config.ReplayThreads;
    ParallelReplayer Parallel(*Prog, L, Index, ParOpts);
    std::vector<ParallelReplayer::ReplayPtr> Many = Parallel.getMany(Refs);
    if (Many.size() != Refs.size())
      return Fail("replay/parallel", "getMany result count differs");
    for (size_t I = 0; I != Many.size(); ++I) {
      if (!Many[I])
        return Fail("replay/parallel", "getMany returned null");
      if (auto D = cmpReplay(*Many[I], Reference[I]); !D.empty())
        return Fail("replay/parallel",
                    "pid " + std::to_string(Refs[I].first) + " interval " +
                        std::to_string(Refs[I].second) + ": " + D);
    }
  }

  //===--- paged/*: pooled sessions vs whole-load ------------------------===//
  // Save the log as v2, re-open it as a paged store, and demand (a) the
  // skim-built index equals the decoded one and (b) a flowback session
  // over the pooled controller answers exactly like one over the eagerly
  // decoded log. The pool budget is randomized from the seed, from one
  // byte (every fault evicts) up to comfortable: eviction churn must
  // never change an answer.
  if (Config.CheckPaged) {
    std::string Path = Config.TempDir + "/ppd_fuzz_" +
                       std::to_string(uint64_t(::getpid())) + "_" +
                       std::to_string(TempCounter.fetch_add(1)) +
                       ".paged.ppdlog";
    if (!L.save(Path, LogFormat::V2)) {
      std::remove(Path.c_str());
      return Fail("paged/save", "v2 save failed");
    }
    std::string OpenErr;
    std::shared_ptr<const PageStore> Store = PageStore::open(Path, &OpenErr);
    if (!Store) {
      std::remove(Path.c_str());
      return Fail("paged/open", OpenErr);
    }

    std::string PagedErr;
    LogIndex Skim(*Store);
    for (uint32_t P = 0; PagedErr.empty() && P != L.Procs.size(); ++P) {
      const auto &VA = Index.intervals(P), &VB = Skim.intervals(P);
      if (VA.size() != VB.size() ||
          Index.openIntervals(P) != Skim.openIntervals(P)) {
        PagedErr = "pid " + std::to_string(P) + " skim index differs";
        break;
      }
      for (size_t I = 0; I != VA.size(); ++I)
        if (VA[I].Index != VB[I].Index || VA[I].EBlock != VB[I].EBlock ||
            VA[I].PrelogRecord != VB[I].PrelogRecord ||
            VA[I].PostlogRecord != VB[I].PostlogRecord ||
            VA[I].Parent != VB[I].Parent || VA[I].Depth != VB[I].Depth ||
            VA[I].ExitsFunction != VB[I].ExitsFunction) {
          PagedErr = "pid " + std::to_string(P) + " skim interval " +
                     std::to_string(I) + " differs";
          break;
        }
    }
    if (!PagedErr.empty()) {
      std::remove(Path.c_str());
      return Fail("paged/index", PagedErr);
    }

    size_t Budget = size_t(1) << (SchedSeed % 17);
    auto Pool = std::make_shared<BufferPool>(Budget);
    PpdController WholeCtl(*Prog, ExecutionLog(L));
    DebugSession WholeSession(*Prog, WholeCtl);
    PpdController PagedCtl(*Prog, PagedLog{Store, Pool});
    DebugSession PagedSession(*Prog, PagedCtl);
    uint32_t FocusPid = Ref.Result.Outcome == RunResult::Status::Failed
                            ? Ref.Result.Error.Pid
                            : 0;
    std::string WhereCmd = "where " + std::to_string(FocusPid);
    const char *Script[] = {WhereCmd.c_str(), "back",   "back", "fwd",
                            "races",          "node 1", WhereCmd.c_str()};
    for (const char *Cmd : Script) {
      std::string Whole = WholeSession.execute(Cmd);
      std::string Paged = PagedSession.execute(Cmd);
      if (Whole != Paged) {
        std::remove(Path.c_str());
        return Fail("paged/session",
                    std::string("command '") + Cmd + "' differs (budget " +
                        std::to_string(Budget) + "):\n--- whole ---\n" +
                        Whole + "\n--- paged ---\n" + Paged);
      }
    }
    std::remove(Path.c_str());
  }

  //===--- deadlock/*: report coherence on Deadlock outcomes -------------===//
  if (Ref.Result.Outcome == RunResult::Status::Deadlock) {
    DeadlockAnalyzer Analyzer(*Prog, L);
    DeadlockReport DR = Analyzer.analyze(Ref.Result.Deadlock);
    if (DR.Waits.size() != Ref.Result.Deadlock.Blocked.size())
      return Fail("deadlock/report",
                  "analyzer reports " + std::to_string(DR.Waits.size()) +
                      " waits for " +
                      std::to_string(Ref.Result.Deadlock.Blocked.size()) +
                      " blocked processes");
    for (uint32_t Pid : DR.Cycle) {
      bool Blocked = false;
      for (const auto &W : Ref.Result.Deadlock.Blocked)
        Blocked |= W.Pid == Pid;
      if (!Blocked)
        return Fail("deadlock/report", "cycle names non-blocked pid " +
                                           std::to_string(Pid));
    }
  }

  //===--- server/*: DebugSession vs framed DebugServer ------------------===//
  // Two more deterministic re-runs supply each side its own log; their
  // equality with the reference log is itself the determinism oracle.
  if (Config.CheckServer) {
    auto RerunLog = [&](std::string &Err) {
      MachineOptions Opts = Base;
      Opts.Mode = RunMode::Logging;
      Machine M(*Prog, Opts);
      M.run();
      ExecutionLog Lg = M.takeLog();
      Err = cmpLogs(L, Lg);
      return Lg;
    };
    std::string Err1, Err2;
    ExecutionLog DirectLog = RerunLog(Err1);
    ExecutionLog ServerLog = RerunLog(Err2);
    if (!Err1.empty() || !Err2.empty())
      return Fail("server/determinism",
                  "re-run log differs: " + (Err1.empty() ? Err2 : Err1));

    DiagnosticEngine SrvDiags;
    auto SrvProg = Compiler::compile(Source, CompileOptions(), SrvDiags);
    if (!SrvProg)
      return Fail("compile", "recompile failed: " + SrvDiags.str());

    PpdController Controller(*Prog, std::move(DirectLog));
    DebugSession Session(*Prog, Controller);

    DebugServer Server;
    uint32_t ProgIdx = Server.addProgram(std::move(SrvProg),
                                         std::move(ServerLog));
    auto Roundtrip = [&](const Request &Req, Response &Resp) {
      LogWriter W;
      encodeRequest(Req, W);
      std::vector<uint8_t> Frame =
          Server.handleFrame(W.data() + 4, W.size() - 4);
      if (Frame.size() < 4)
        return false;
      return decodeResponse(Frame.data() + 4, Frame.size() - 4, Resp);
    };

    Request Open;
    Open.Type = MsgType::OpenSession;
    Open.RequestId = 1;
    Open.ProgramIndex = ProgIdx;
    Response Opened;
    if (!Roundtrip(Open, Opened) || Opened.Type != RespType::SessionOpened)
      return Fail("server/open", "OpenSession did not yield a session");

    // The script mixes Query, Step, and Races frames; "stats" is excluded
    // by design (cache counters legitimately differ between the sides).
    struct Cmd {
      MsgType Type;
      const char *Text;    ///< Query command / DebugSession line.
      uint8_t Direction;   ///< Step only.
    };
    uint32_t FailPid =
        Ref.Result.Outcome == RunResult::Status::Failed
            ? Ref.Result.Error.Pid
            : 0;
    std::string WhereCmd = "where " + std::to_string(FailPid);
    const Cmd Script[] = {
        {MsgType::Query, WhereCmd.c_str(), 0},
        {MsgType::Step, "back", 0},
        {MsgType::Step, "back", 0},
        {MsgType::Step, "fwd", 1},
        {MsgType::Races, "races", 0},
        {MsgType::Query, "node 1", 0},
        {MsgType::Query, "list", 0},
    };
    uint64_t RequestId = 2;
    for (const Cmd &C : Script) {
      std::string Direct = Session.execute(C.Text);
      Request Req;
      Req.Type = C.Type;
      Req.RequestId = RequestId++;
      Req.SessionId = Opened.SessionId;
      Req.Direction = C.Direction;
      if (C.Type == MsgType::Query)
        Req.Command = C.Text;
      Response Resp;
      if (!Roundtrip(Req, Resp) || Resp.Type != RespType::Result)
        return Fail("server/frame", std::string("command '") + C.Text +
                                        "' did not yield a Result frame");
      if (Resp.Text != Direct)
        return Fail("server/responses",
                    std::string("command '") + C.Text +
                        "' differs:\n--- session ---\n" + Direct +
                        "\n--- server ---\n" + Resp.Text);
    }
    Request Close;
    Close.Type = MsgType::CloseSession;
    Close.RequestId = RequestId;
    Close.SessionId = Opened.SessionId;
    Response Closed;
    if (!Roundtrip(Close, Closed) || Closed.Type != RespType::Closed)
      return Fail("server/close", "CloseSession did not acknowledge");
  }

  //===--- stream/*: live-attach ingest vs the batch pipeline ------------===//
  // Re-run the program with a StreamSealer hooked into scheduler rounds —
  // cuts must be sealed DURING execution to be consistent — and feed the
  // frames straight into an in-process IngestRegistry. The section
  // threshold is seed-randomized down to a single record so cut
  // boundaries land everywhere, including one-record sections. At
  // sampled frontiers a tail query must answer exactly like a batch
  // controller over a copy of the same prefix (the incremental
  // append-equals-rebuild invariant); at the end the frontier must equal
  // the batch log field-by-field and byte-for-byte as v2.
  if (Config.CheckStream) {
    DiagnosticEngine SrvDiags;
    auto SrvProg = Compiler::compile(Source, CompileOptions(), SrvDiags);
    if (!SrvProg)
      return Fail("compile", "recompile failed: " + SrvDiags.str());
    DebugServer Server;
    uint32_t ProgIdx = Server.addProgram(std::move(SrvProg), ExecutionLog());
    stream::IngestRegistry Ingest(Server, stream::IngestOptions());

    stream::SealerOptions SOpts;
    SOpts.ProgramIndex = ProgIdx;
    SOpts.ProgramHash = programHash(*Prog);
    SOpts.SectionRecords = 1 + uint32_t(SchedSeed % 9);
    stream::StreamSealer Sealer(SOpts);

    Response Hello = Ingest.dispatch(Sealer.helloFrame());
    if (Hello.Type != RespType::Ack)
      return Fail("stream/hello", "StreamHello rejected: " + Hello.Text);
    Sealer.setStreamId(Hello.StreamId);
    const uint64_t Sid = Hello.StreamId;

    std::string StreamErr;
    auto ShipAll = [&](std::vector<Request> Frames) {
      for (Request &F : Frames) {
        Response R = Ingest.dispatch(F);
        if (R.Type != RespType::Ack) {
          StreamErr = "SectionData rejected (cut " +
                      std::to_string(F.CutSeq) + "): " + R.Text;
          return;
        }
      }
    };

    // Sampled prefix checks: after some applied cuts, the ingest
    // snapshot and a batch controller over the same prefix run a short
    // flowback script and must agree verbatim.
    unsigned PrefixChecks = 0;
    uint64_t CheckedVersion = 0;
    auto CheckPrefix = [&]() {
      if (PrefixChecks >= 4 || !StreamErr.empty())
        return;
      uint64_t Version = Ingest.frontierVersion(Sid);
      if (Version == CheckedVersion ||
          (Version % 3) != (SchedSeed % 3)) // seed-skewed sampling
        return;
      CheckedVersion = Version;
      ++PrefixChecks;
      ExecutionLog Prefix;
      if (!Ingest.frontierLog(Sid, Prefix) || Prefix.Procs.empty())
        return;
      PpdController BatchCtl(*Prog, ExecutionLog(Prefix));
      DebugSession BatchSess(*Prog, BatchCtl);
      for (const char *Cmd : {"where 0", "back", "races"}) {
        Request Tail;
        Tail.Type = MsgType::TailQuery;
        Tail.StreamId = Sid;
        Tail.Command = Cmd;
        Response R = Ingest.dispatch(Tail);
        std::string Batch = BatchSess.execute(Cmd);
        if (R.Type != RespType::Result) {
          StreamErr = std::string("tail '") + Cmd +
                      "' did not yield a Result: " + R.Text;
          return;
        }
        if (R.Text != Batch) {
          StreamErr = std::string("prefix (version ") +
                      std::to_string(Version) + ") tail '" + Cmd +
                      "' differs:\n--- batch ---\n" + Batch +
                      "\n--- tail ---\n" + R.Text;
          return;
        }
      }
    };

    MachineOptions Opts = Base;
    Opts.Mode = RunMode::Logging;
    Machine M(*Prog, Opts);
    M.onRound([&](Machine &Mach) {
      if (!StreamErr.empty())
        return;
      ShipAll(Sealer.sealRound(Mach.log(), /*Force=*/false));
      CheckPrefix();
    });
    M.run();
    if (!StreamErr.empty())
      return Fail("stream/ingest", StreamErr);
    ShipAll(Sealer.sealRound(M.log(), /*Force=*/true));
    if (!StreamErr.empty())
      return Fail("stream/ingest", StreamErr);
    {
      std::string RerunErr = cmpLogs(L, M.log());
      if (!RerunErr.empty())
        return Fail("stream/determinism", "re-run log differs: " + RerunErr);
      Response EndResp = Ingest.dispatch(Sealer.endFrame(M.log()));
      if (EndResp.Type != RespType::Ack)
        return Fail("stream/end", "StreamEnd rejected: " + EndResp.Text);
    }

    ExecutionLog Frontier;
    if (!Ingest.frontierLog(Sid, Frontier))
      return Fail("stream/final", "frontier log unavailable after end");
    if (auto D = cmpLogs(L, Frontier); !D.empty())
      return Fail("stream/final-log", D);
    {
      // Byte identity: the streamed accumulation must serialize to the
      // exact v2 file a batch save produces.
      std::string PathA = Config.TempDir + "/ppd_fuzz_" +
                          std::to_string(uint64_t(::getpid())) + "_" +
                          std::to_string(TempCounter.fetch_add(1)) +
                          ".stream.ppdlog";
      std::string PathB = PathA + ".batch";
      std::vector<uint8_t> BytesA, BytesB;
      bool Ok = Frontier.save(PathA, LogFormat::V2) &&
                L.save(PathB, LogFormat::V2) &&
                readFileBytes(PathA, BytesA) && readFileBytes(PathB, BytesB);
      std::remove(PathA.c_str());
      std::remove(PathB.c_str());
      if (!Ok)
        return Fail("stream/v2-bytes", "save or read-back failed");
      if (BytesA != BytesB)
        return Fail("stream/v2-bytes",
                    "streamed v2 bytes differ from batch (size " +
                        std::to_string(BytesA.size()) + " vs " +
                        std::to_string(BytesB.size()) + ")");
    }
    // Final-frontier script vs a fresh batch session over the reference
    // log: the adopted incremental index/graph answer like rebuilt ones,
    // races included.
    {
      PpdController BatchCtl(*Prog, ExecutionLog(L));
      DebugSession BatchSess(*Prog, BatchCtl);
      uint32_t FocusPid = Ref.Result.Outcome == RunResult::Status::Failed
                              ? Ref.Result.Error.Pid
                              : 0;
      std::string WhereCmd = "where " + std::to_string(FocusPid);
      const char *Script[] = {WhereCmd.c_str(), "back", "fwd", "races"};
      for (const char *Cmd : Script) {
        Request Tail;
        Tail.Type = MsgType::TailQuery;
        Tail.StreamId = Sid;
        Tail.Command = Cmd;
        Response R = Ingest.dispatch(Tail);
        std::string Batch = BatchSess.execute(Cmd);
        if (R.Type != RespType::Result || R.Text != Batch)
          return Fail("stream/tail", std::string("final tail '") + Cmd +
                                         "' differs:\n--- batch ---\n" +
                                         Batch + "\n--- tail ---\n" + R.Text);
      }
    }
  }

  //===--- flowback/*: dependence edges vs semantic ground truth ---------===//
  // Every read in every traced interval must have a data in-edge for its
  // variable, and when every candidate source is a singular writer whose
  // written value is determinable, at least one must have written the
  // value actually read. This checks the *meaning* of the graph, not a
  // re-execution of the builder's algorithm — a stale intra-interval
  // writer carried across a synchronization boundary fails here even
  // though the builder's own logic would reproduce it.
  if (Config.CheckFlowback && Report.RaceFree &&
      Ref.Result.Outcome == RunResult::Status::Completed) {
    MachineOptions Opts = Base;
    Opts.Mode = RunMode::Logging;
    Machine M(*Prog, Opts);
    M.run();
    PpdController Controller(*Prog, M.takeLog());

    std::vector<std::pair<ParallelReplayer::IntervalRef, BuiltFragment>>
        Fragments;
    for (const auto &RefIv : Refs) {
      const BuiltFragment *F =
          Controller.ensureInterval(RefIv.first, RefIv.second);
      if (!F)
        return Fail("flowback/trace",
                    "pid " + std::to_string(RefIv.first) + " interval " +
                        std::to_string(RefIv.second) +
                        " failed to trace on a race-free run");
      Fragments.push_back({RefIv, *F});
    }
    Controller.resolveAllCrossReads();

    const DynamicGraph &Graph = Controller.graph();
    for (const auto &[IvRef, Frag] : Fragments) {
      const ReplayResult *Replay =
          Controller.replayOf(IvRef.first, IvRef.second);
      if (!Replay)
        return Fail("flowback/trace", "traced interval has no replay");
      const auto &Events = Replay->Events.Events;
      if (Frag.EventNodes.size() != Events.size())
        return Fail("flowback/nodes",
                    "fragment maps " +
                        std::to_string(Frag.EventNodes.size()) +
                        " nodes for " + std::to_string(Events.size()) +
                        " events");
      for (size_t EI = 0; EI != Events.size(); ++EI) {
        const TraceEvent &E = Events[EI];
        if (E.Kind != TraceEventKind::Stmt)
          continue;
        DynNodeId Reader = Frag.EventNodes[EI];
        std::vector<DynEdge> In = Graph.inEdges(Reader);
        for (const TraceAccess &R : E.Reads) {
          bool Satisfied = false, Soft = false;
          unsigned Candidates = 0;
          std::string Mismatch;
          for (const DynEdge &Edge : In) {
            if (Edge.Var != R.Var || (Edge.Kind != DynEdgeKind::Data &&
                                      Edge.Kind != DynEdgeKind::CrossData))
              continue;
            const DynNode &Src = Graph.node(Edge.From);
            if (Src.Kind != DynNodeKind::Singular) {
              // Entry / Initial / Param / unexpanded sub-graph: the value
              // is not attributable to one write; accept.
              ++Candidates;
              Soft = true;
              continue;
            }
            const ReplayResult *SrcReplay =
                Controller.replayOf(Src.Pid, Src.Interval);
            if (!SrcReplay || Src.Event >= SrcReplay->Events.Events.size())
              return Fail("flowback/nodes",
                          "edge source points at an untraced event");
            const TraceEvent &WE = SrcReplay->Events.Events[Src.Event];
            // Edges carry the variable but not the element index, so a
            // statement that reads several elements of one array sees its
            // siblings' edges too. A source that writes the variable only
            // at other concrete indices is such a sibling edge: skip it.
            // A source that never writes the variable at all is a wiring
            // bug in the builder.
            bool WroteVar = false, WroteElem = false;
            for (const TraceAccess &W : WE.Writes) {
              if (W.Var != R.Var)
                continue;
              WroteVar = true;
              if (W.Index != R.Index && W.Index != -1 && R.Index != -1)
                continue;
              WroteElem = true;
              if (W.Value == R.Value)
                Satisfied = true;
              else
                Mismatch = "writer s" + std::to_string(WE.Stmt) +
                           " wrote " + std::to_string(W.Value) +
                           ", read saw " + std::to_string(R.Value);
            }
            if (!WroteVar)
              return Fail(
                  "flowback/edges",
                  "data edge from a node that never writes the variable "
                  "(reader s" +
                      std::to_string(E.Stmt) + ", writer s" +
                      std::to_string(WE.Stmt) + ")");
            if (WroteElem)
              ++Candidates;
          }
          if (Candidates == 0) {
            const VarInfo &Info = Prog->Symbols->var(R.Var);
            return Fail("flowback/missing-edge",
                        "read of '" + Info.Name + "' at s" +
                            std::to_string(E.Stmt) + " (pid " +
                            std::to_string(IvRef.first) + " interval " +
                            std::to_string(IvRef.second) +
                            ") has no data in-edge");
          }
          if (!Satisfied && !Soft)
            return Fail("flowback/value",
                        "read of '" + Prog->Symbols->var(R.Var).Name +
                            "' at s" + std::to_string(E.Stmt) + " (pid " +
                            std::to_string(IvRef.first) + " interval " +
                            std::to_string(IvRef.second) + "): " + Mismatch);
        }
      }
    }
  }

  return Report;
}

} // namespace ppd::testing
