//===- testing/Fuzzer.cpp -------------------------------------------------===//
//
// Part of PPD. See Fuzzer.h.
//
//===----------------------------------------------------------------------===//

#include "testing/Fuzzer.h"

#include "testing/Minimizer.h"
#include "vm/Machine.h"

#include <sstream>

using namespace ppd;
using namespace ppd::testing;

namespace ppd::testing {

FuzzResult runFuzz(const FuzzOptions &Options) {
  FuzzResult Result;
  auto Note = [&](const std::string &Line) {
    if (Options.Log)
      Options.Log(Line);
  };

  for (uint64_t I = 0; I != Options.Runs; ++I) {
    const uint64_t Seed = Options.FirstSeed + I;
    GenProgram Program = generateProgram(Seed);
    std::string Source = Program.render();

    DiffReport Report = runDifferential(Source, Program.SchedSeed,
                                        Program.Quantum, Options.Diff);
    ++Result.Stats.Runs;
    ++Result.Stats.ByProfile[unsigned(Program.Profile) % 6];
    switch (RunResult::Status(Report.Outcome)) {
    case RunResult::Status::Completed:
      ++Result.Stats.Completed;
      break;
    case RunResult::Status::Deadlock:
      ++Result.Stats.Deadlocks;
      break;
    case RunResult::Status::Failed:
      ++Result.Stats.Failures;
      break;
    case RunResult::Status::StepLimit:
      ++Result.Stats.StepLimits;
      break;
    case RunResult::Status::Breakpoint:
      break;
    }
    if (!Report.RaceFree)
      ++Result.Stats.RacyRuns;
    Result.Stats.TotalRaces += Report.Races;
    Result.Stats.TotalIntervals += Report.Intervals;
    Result.Stats.TotalSteps += Report.Steps;

    if (!Report.Divergent) {
      if ((I + 1) % 50 == 0)
        Note("  ... " + std::to_string(I + 1) + "/" +
             std::to_string(Options.Runs) + " seeds clean");
      continue;
    }

    Result.Failed = true;
    Result.FailingSeed = Seed;
    Result.FailingProfile = Program.Profile;
    Result.Report = Report;
    Result.OriginalSource = Source;
    Result.ReproSource = Source;
    Result.ReproStatements = GenProgram::countStatements(Source);
    Note("seed " + std::to_string(Seed) + " [" +
         genProfileName(Program.Profile) + "]: DIVERGENCE in " +
         Report.Oracle);

    if (Options.Minimize) {
      const std::string WantOracle = Report.Oracle;
      MinimizeResult Min = minimizeProgram(
          Program, [&](const std::string &Candidate) {
            DiffReport R = runDifferential(Candidate, Program.SchedSeed,
                                           Program.Quantum, Options.Diff);
            return R.Divergent && R.Oracle == WantOracle;
          });
      Result.ReproSource = Min.Source;
      Result.ReproStatements = Min.Statements;
      Result.MinimizerCalls = Min.PredicateCalls;
      Note("  minimized to " + std::to_string(Min.Statements) +
           " statements (" + std::to_string(Min.PredicateCalls) +
           " predicate calls)");
    }
    break;
  }
  return Result;
}

std::string summarizeFuzz(const FuzzResult &Result) {
  const FuzzStats &S = Result.Stats;
  std::ostringstream Os;
  Os << S.Runs << " runs: " << S.Completed << " completed, " << S.Deadlocks
     << " deadlocked, " << S.Failures << " failed, " << S.StepLimits
     << " hit the step limit\n";
  Os << "profiles:";
  for (unsigned P = 0; P != 6; ++P)
    Os << " " << genProfileName(GenProfile(P)) << "=" << S.ByProfile[P];
  Os << "\n";
  Os << S.RacyRuns << " racy runs (" << S.TotalRaces << " races), "
     << S.TotalIntervals << " log intervals replayed, " << S.TotalSteps
     << " VM steps\n";
  if (!Result.Failed) {
    Os << "no divergences\n";
    return Os.str();
  }
  Os << "\nDIVERGENCE at seed " << Result.FailingSeed << " ["
     << genProfileName(Result.FailingProfile) << "], oracle "
     << Result.Report.Oracle << ":\n  " << Result.Report.Detail << "\n";
  Os << "repro (" << Result.ReproStatements << " statements):\n"
     << Result.ReproSource;
  return Os.str();
}

} // namespace ppd::testing
