//===- testing/DiffOracles.h - Cross-pipeline differential driver -*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle half of the fuzzing harness: run one PPL program through
/// every redundant pipeline pair the repository maintains and demand they
/// agree. PPD is unusually rich in internal redundancy — two interpreters
/// per run mode, two log formats, three replay paths, two race-detection
/// algorithms, a direct and a framed debugging interface — and every such
/// pair is a free differential oracle: no hand-written expected outputs,
/// just "these two must match".
///
/// The oracle matrix (see DESIGN.md §9):
///
///   engine/*    decoded vs legacy interpreter, per run mode: outcome,
///               steps, error, shared memory, output, logs, traces.
///   mode/*      Plain vs Logging (always comparable: instrumentation
///               must not perturb execution), Logging vs FullTrace for
///               single-process programs (the emulation chunk shifts
///               preemption points, so multi-process interleavings may
///               legitimately differ).
///   log/*       v1 and v2 save → load → re-save: loaded records equal
///               the originals field-by-field, re-saved bytes equal the
///               first save byte-for-byte, interval index identical.
///   replay/*    serial decoded vs serial legacy replay per interval, vs
///               the memoized ParallelReplayer (serial, parallel getMany,
///               and cache re-read); on race-free instances, closed
///               intervals must verify their postlogs exactly.
///   race/*      NaiveAllPairs vs VarIndexed vs an independent
///               BFS-reachability recheck built here from the raw log.
///   flowback/*  every read in every traced interval must have a data
///               in-edge, and edges from singular writers must carry the
///               value actually read (semantic truth, not a re-run of the
///               builder's own algorithm).
///   deadlock/*  a Deadlock outcome must produce a coherent wait-for
///               report over exactly the blocked processes.
///   server/*    a scripted DebugSession vs the same script through
///               DebugServer::handleFrame on a re-run of the same
///               program (machine determinism makes the logs identical).
///   paged/*     the whole-load session vs a pooled session over the same
///               v2 file under a seed-randomized (often starved) buffer
///               pool budget, plus skim-index-vs-decoded-index equality.
///   stream/*    a re-run streamed as consistent cuts (seed-randomized
///               section threshold, down to one record) into the ingest
///               registry: the final frontier must equal the batch log
///               bit-for-bit as v2, and sampled mid-run frontiers must
///               answer tail queries exactly like a batch controller
///               over the same prefix (incremental index/graph append =
///               rebuild, prefix-closedness of live answers).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_TESTING_DIFFORACLES_H
#define PPD_TESTING_DIFFORACLES_H

#include <cstdint>
#include <string>

namespace ppd::testing {

struct DiffConfig {
  /// Step budget per machine run; generated programs terminate well under
  /// this, so hitting it is itself reported by the engine oracle.
  uint64_t MaxSteps = 2'000'000;
  /// Worker threads for the parallel-replay comparison.
  unsigned ReplayThreads = 2;
  /// Run the session-vs-server oracle (re-runs the program twice).
  bool CheckServer = true;
  /// Run the flowback-edge oracle (builds the full dynamic graph).
  bool CheckFlowback = true;
  /// Run the pooled-vs-whole oracle (saves the log and re-opens it
  /// through a PageStore + BufferPool with a seed-randomized budget).
  bool CheckPaged = true;
  /// Run the streamed-vs-batch oracle (re-runs the program with a cut
  /// sealer hooked into scheduler rounds, ingests the cuts through an
  /// in-process IngestRegistry, and demands the final frontier equal the
  /// batch log bit-for-bit — with sampled mid-run frontiers answering
  /// tail queries exactly like a batch load of the same prefix).
  bool CheckStream = true;
  /// Directory for the on-disk log round-trips.
  std::string TempDir = "/tmp";
};

/// The verdict of one differential run.
struct DiffReport {
  bool Divergent = false;
  /// Stable oracle name ("engine/logging", "log/v2-resave", ...): the
  /// minimizer preserves it so shrinking cannot wander to a different bug.
  std::string Oracle;
  std::string Detail;
  /// Reference-run facts (the decoded Logging run), for harness stats.
  int Outcome = 0; ///< RunResult::Status as int.
  bool RaceFree = true;
  unsigned Races = 0;
  uint64_t Steps = 0;
  unsigned Intervals = 0;
};

/// Compiles \p Source and runs the full oracle matrix with scheduling seed
/// \p SchedSeed and quantum \p Quantum. A program that fails to compile is
/// reported as Oracle == "compile" (the generator promises never to
/// produce one — so it is a generator bug, and still a finding).
DiffReport runDifferential(const std::string &Source, uint64_t SchedSeed,
                           uint32_t Quantum, const DiffConfig &Config = {});

} // namespace ppd::testing

#endif // PPD_TESTING_DIFFORACLES_H
