//===- testing/ProgramGen.cpp ---------------------------------------------===//
//
// Part of PPD. See ProgramGen.h.
//
//===----------------------------------------------------------------------===//

#include "testing/ProgramGen.h"

#include "support/Rng.h"

#include <cctype>

using namespace ppd;
using namespace ppd::testing;

const char *ppd::testing::genProfileName(GenProfile Profile) {
  switch (Profile) {
  case GenProfile::Compute:
    return "compute";
  case GenProfile::SyncHeavy:
    return "sync-heavy";
  case GenProfile::Racy:
    return "racy";
  case GenProfile::DeadlockProne:
    return "deadlock-prone";
  case GenProfile::Channels:
    return "channels";
  case GenProfile::Streamed:
    return "streamed";
  }
  return "?";
}

std::string GenProgram::render(const std::vector<bool> *Removed) const {
  std::string Out;
  // Iterative pre/post-order walk: emit Head, children, Tail.
  struct Visit {
    uint32_t Unit;
    bool Closing;
  };
  std::vector<Visit> Stack;
  Stack.push_back({0, false});
  while (!Stack.empty()) {
    Visit V = Stack.back();
    Stack.pop_back();
    const GenUnit &U = Units[V.Unit];
    if (V.Closing) {
      for (const std::string &Line : U.Tail) {
        Out += Line;
        Out += '\n';
      }
      continue;
    }
    if (Removed && V.Unit < Removed->size() && (*Removed)[V.Unit])
      continue;
    for (const std::string &Line : U.Head) {
      Out += Line;
      Out += '\n';
    }
    Stack.push_back({V.Unit, true});
    for (size_t I = U.Children.size(); I != 0; --I)
      Stack.push_back({U.Children[I - 1], false});
  }
  return Out;
}

std::vector<uint32_t> GenProgram::removableUnits() const {
  std::vector<uint32_t> Out;
  std::vector<uint32_t> Stack = {0};
  while (!Stack.empty()) {
    uint32_t Id = Stack.back();
    Stack.pop_back();
    if (Units[Id].Removable)
      Out.push_back(Id);
    for (size_t I = Units[Id].Children.size(); I != 0; --I)
      Stack.push_back(Units[Id].Children[I - 1]);
  }
  return Out;
}

unsigned GenProgram::countStatements(const std::string &Source) {
  unsigned Count = 0;
  for (size_t Pos = 0; Pos < Source.size();) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    std::string_view Line(Source.data() + Pos, End - Pos);
    Pos = End + 1;
    // A line counts if it holds anything beyond braces/whitespace.
    bool Counts = false;
    for (char C : Line)
      if (!std::isspace(uint8_t(C)) && C != '{' && C != '}') {
        Counts = true;
        break;
      }
    Count += Counts;
  }
  return Count;
}

namespace {

/// The grammar walker. One instance generates one program; all choices
/// come from the seeded Rng, so a seed fully determines the program.
class Generator {
public:
  Generator(uint64_t Seed, const GenOptions &Options)
      : R(Seed * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull), Options(Options) {}

  GenProgram run() {
    Prog.Profile = Options.Profile;
    Prog.addUnit(GenUnit{}); // root
    UseArray = R.nextBelow(2) == 0;
    UseInput = R.nextBelow(3) == 0;
    genDecls();
    genHelpers();
    switch (Options.Profile) {
    case GenProfile::Compute:
      genComputeMain();
      break;
    case GenProfile::SyncHeavy:
    case GenProfile::Racy:
      genWorkersAndMain(/*Locked=*/Options.Profile == GenProfile::SyncHeavy);
      break;
    case GenProfile::Streamed:
      // Either worker shape, chosen per seed: the streamed-vs-batch
      // oracle wants cut boundaries across both locked and racy traffic.
      genWorkersAndMain(/*Locked=*/R.nextBelow(2) == 0);
      break;
    case GenProfile::DeadlockProne:
      genDeadlockProne();
      break;
    case GenProfile::Channels:
      genChannels();
      break;
    }
    return std::move(Prog);
  }

private:
  uint32_t child(uint32_t Parent, GenUnit Unit) {
    uint32_t Id = Prog.addUnit(std::move(Unit));
    Prog.Units[Parent].Children.push_back(Id);
    return Id;
  }

  uint32_t stmtLine(uint32_t Parent, unsigned Indent, std::string Text) {
    GenUnit U;
    U.Head.push_back(std::string(Indent * 2, ' ') + std::move(Text));
    U.Removable = true;
    return child(Parent, std::move(U));
  }

  // -- declarations ------------------------------------------------------

  void genDecls() {
    // Shared scalars the whole program fights over, a private global, and
    // optionally a shared array. Declarations are individually removable:
    // deleting one that is still referenced simply fails the minimizer's
    // compile predicate and is kept.
    for (unsigned I = 0; I != 3; ++I)
      stmtLine(0, 0, "shared int g" + std::to_string(I) + ";");
    if (UseArray)
      stmtLine(0, 0, "shared int ga[4];");
    stmtLine(0, 0, "int p0;");
  }

  void declSems(unsigned Count) {
    for (unsigned I = 0; I != Count; ++I)
      stmtLine(0, 0, "sem s" + std::to_string(I) + " = 1;");
    stmtLine(0, 0, "sem join;");
  }

  // -- expressions -------------------------------------------------------

  std::string randVar() { return Vars[R.nextBelow(Vars.size())]; }

  std::string arrayRead(unsigned Depth) {
    // Mostly in-bounds (`% 4`), occasionally raw so IndexOutOfBounds
    // failures exercise the failure pipeline differentially.
    if (R.nextBelow(16) == 0)
      return "ga[" + expr(Depth ? Depth - 1 : 0) + "]";
    return "ga[abs(" + expr(Depth ? Depth - 1 : 0) + ") % 4]";
  }

  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.nextBelow(4) == 0) {
      switch (R.nextBelow(UseArray ? 4u : 3u)) {
      case 0:
        return std::to_string(R.nextInRange(-9, 20));
      case 1:
      case 2:
        return randVar();
      default:
        return arrayRead(1);
      }
    }
    switch (R.nextBelow(CanCall ? 9u : 8u)) {
    case 0:
      return "(" + expr(Depth - 1) + " + " + expr(Depth - 1) + ")";
    case 1:
      return "(" + expr(Depth - 1) + " - " + expr(Depth - 1) + ")";
    case 2:
      return "(" + expr(Depth - 1) + " * " + expr(Depth - 1) + ")";
    case 3:
      // Guarded division/modulo most of the time; occasionally raw, so
      // DivideByZero/ModuloByZero paths get differential coverage too.
      if (R.nextBelow(12) == 0)
        return "(" + expr(Depth - 1) + (R.nextBelow(2) ? " / " : " % ") +
               expr(Depth - 1) + ")";
      return "(" + expr(Depth - 1) + (R.nextBelow(2) ? " / " : " % ") +
             "(abs(" + expr(Depth - 1) + ") % 7 + 1))";
    case 4:
      return "(-" + expr(Depth - 1) + ")";
    case 5:
      return "abs(" + expr(Depth - 1) + ")";
    case 6:
      if (UseInput && R.nextBelow(3) == 0)
        return "input()";
      return randVar();
    case 7:
      return "(" + cond(Depth - 1) + " + " + expr(Depth - 1) + ")";
    default:
      return "helper" + std::to_string(R.nextBelow(NumHelpers)) + "(" +
             expr(Depth - 1) + ", " + expr(Depth - 1) + ")";
    }
  }

  std::string cond(unsigned Depth) {
    if (Depth != 0 && R.nextBelow(4) == 0) {
      const char *Join = R.nextBelow(2) ? " && " : " || ";
      return "(" + cond(Depth - 1) + Join + cond(Depth - 1) + ")";
    }
    if (Depth != 0 && R.nextBelow(8) == 0)
      return "(!" + cond(Depth - 1) + ")";
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + expr(Depth) + " " + Ops[R.nextBelow(6)] + " " + expr(Depth) +
           ")";
  }

  // -- statements --------------------------------------------------------

  std::string lvalue() {
    if (UseArray && R.nextBelow(5) == 0)
      return "ga[abs(" + expr(1) + ") % 4]";
    return randVar();
  }

  void genStmt(uint32_t Parent, unsigned Indent, unsigned Depth) {
    unsigned Pick = R.nextBelow(Depth == 0 ? 4u : 10u);
    switch (Pick) {
    case 0:
    case 1:
      stmtLine(Parent, Indent, lvalue() + " = " + expr(2) + ";");
      return;
    case 2:
      stmtLine(Parent, Indent, "print(" + expr(1) + ");");
      return;
    case 3: {
      // Fresh local, immediately usable by later statements.
      std::string V = "t" + std::to_string(LocalCounter++);
      stmtLine(Parent, Indent, "int " + V + " = " + expr(1) + ";");
      Vars.push_back(V);
      return;
    }
    case 4:
    case 5: {
      // The then arm holds removable child units; the optional else arm is
      // simple fixed lines in the unit's tail (the whole if/else is one
      // removable unit, so the minimizer deletes it atomically).
      GenUnit U;
      std::string Pad(Indent * 2, ' ');
      U.Head.push_back(Pad + "if " + cond(2) + " {");
      U.Removable = true;
      if (R.nextBelow(2) == 0) {
        U.Tail.push_back(Pad + "} else {");
        U.Tail.push_back(Pad + "  " + lvalue() + " = " + expr(1) + ";");
        if (R.nextBelow(2) == 0)
          U.Tail.push_back(Pad + "  print(" + expr(1) + ");");
        U.Tail.push_back(Pad + "}");
      } else {
        U.Tail.push_back(Pad + "}");
      }
      uint32_t If = child(Parent, std::move(U));
      genBlock(If, Indent + 1, Depth - 1, 1 + R.nextBelow(2));
      return;
    }
    case 6: {
      // Bounded for loop over a fresh iterator.
      std::string It = "i" + std::to_string(LocalCounter++);
      std::string Pad(Indent * 2, ' ');
      GenUnit U;
      U.Head.push_back(Pad + "int " + It + " = 0;");
      U.Head.push_back(Pad + "for (" + It + " = 0; " + It + " < " +
                       std::to_string(R.nextInRange(1, 5)) + "; " + It +
                       " = " + It + " + 1) {");
      U.Tail.push_back(Pad + "}");
      U.Removable = true;
      uint32_t Loop = child(Parent, std::move(U));
      genBlock(Loop, Indent + 1, Depth - 1, 1 + R.nextBelow(2));
      return;
    }
    case 7: {
      // While loop; the counter increment is in the unit's tail, so the
      // minimizer cannot strip it and break termination.
      std::string W = "w" + std::to_string(LocalCounter++);
      std::string Pad(Indent * 2, ' ');
      GenUnit U;
      U.Head.push_back(Pad + "int " + W + " = 0;");
      U.Head.push_back(Pad + "while (" + W + " < " +
                       std::to_string(R.nextInRange(1, 4)) + ") {");
      U.Tail.push_back(Pad + "  " + W + " = " + W + " + 1;");
      U.Tail.push_back(Pad + "}");
      U.Removable = true;
      uint32_t Loop = child(Parent, std::move(U));
      genBlock(Loop, Indent + 1, Depth - 1, 1 + R.nextBelow(2));
      return;
    }
    case 8:
      if (NumSems != 0) {
        // Critical section: P/V bracket a nested body as one unit.
        std::string S = "s" + std::to_string(R.nextBelow(NumSems));
        std::string Pad(Indent * 2, ' ');
        GenUnit U;
        U.Head.push_back(Pad + "P(" + S + ");");
        U.Tail.push_back(Pad + "V(" + S + ");");
        U.Removable = true;
        uint32_t Crit = child(Parent, std::move(U));
        genStmts(Crit, Indent, Depth == 0 ? 0 : Depth - 1,
                 1 + R.nextBelow(2));
        return;
      }
      stmtLine(Parent, Indent, lvalue() + " = " + expr(2) + ";");
      return;
    default:
      if (NumChans != 0) {
        std::string C = "c" + std::to_string(R.nextBelow(NumChans));
        if (R.nextBelow(2) == 0) {
          stmtLine(Parent, Indent, "send(" + C + ", " + expr(1) + ");");
        } else {
          std::string V = "t" + std::to_string(LocalCounter++);
          stmtLine(Parent, Indent, "int " + V + " = recv(" + C + ");");
          Vars.push_back(V);
        }
        return;
      }
      stmtLine(Parent, Indent, "print(" + expr(1) + ");");
      return;
    }
  }

  void genStmts(uint32_t Parent, unsigned Indent, unsigned Depth,
                unsigned Count) {
    for (unsigned I = 0; I != Count; ++I)
      genStmt(Parent, Indent, Depth);
  }

  /// Statements inside a braced body: locals declared there are
  /// block-scoped in PPL, so the in-scope list is restored afterwards.
  void genBlock(uint32_t Parent, unsigned Indent, unsigned Depth,
                unsigned Count) {
    size_t Mark = Vars.size();
    genStmts(Parent, Indent, Depth, Count);
    Vars.resize(Mark);
  }

  /// Saves/restores the in-scope variable list around a function body.
  struct ScopedVars {
    Generator &G;
    std::vector<std::string> Saved;
    explicit ScopedVars(Generator &G) : G(G), Saved(G.Vars) {}
    ~ScopedVars() { G.Vars = std::move(Saved); }
  };

  // -- functions ---------------------------------------------------------

  void genHelpers() {
    NumHelpers = 1 + unsigned(R.nextBelow(2));
    for (unsigned F = 0; F != NumHelpers; ++F) {
      GenUnit U;
      U.Head.push_back("func helper" + std::to_string(F) +
                       "(int a, int b) {");
      U.Tail.push_back("  return (a + b);");
      U.Tail.push_back("}");
      U.Removable = true;
      uint32_t Fn = child(0, std::move(U));
      ScopedVars Scope(*this);
      Vars = {"a", "b", "p0"};
      bool SavedCall = CanCall;
      unsigned SavedSems = NumSems, SavedChans = NumChans;
      CanCall = false;   // helpers never call: no recursion.
      NumSems = 0;       // and never block: callable from anywhere.
      NumChans = 0;
      genStmts(Fn, 1, 2, 2);
      CanCall = SavedCall;
      NumSems = SavedSems;
      NumChans = SavedChans;
    }
  }

  uint32_t openWorker(unsigned Index) {
    GenUnit U;
    U.Head.push_back("func worker" + std::to_string(Index) + "(int a) {");
    U.Tail.push_back("  V(join);");
    U.Tail.push_back("}");
    uint32_t Fn = child(0, std::move(U));
    return Fn;
  }

  uint32_t openMain(unsigned Workers) {
    GenUnit U;
    U.Head.push_back("func main() {");
    for (unsigned W = 0; W != Workers; ++W)
      U.Head.push_back("  spawn worker" + std::to_string(W) + "(" +
                       std::to_string(R.nextInRange(0, 6)) + ");");
    // Join before the final prints so completed runs observe stable state.
    for (unsigned W = 0; W != Workers; ++W)
      U.Tail.push_back("  P(join);");
    U.Tail.push_back("  print(g0);");
    U.Tail.push_back("  print((g1 + g2));");
    U.Tail.push_back("  print(p0);");
    if (UseArray)
      U.Tail.push_back("  print((((ga[0] + ga[1]) + ga[2]) + ga[3]));");
    U.Tail.push_back("}");
    Prog.MultiProcess = Workers != 0;
    return child(0, std::move(U));
  }

  void genComputeMain() {
    CanCall = true;
    uint32_t Main = openMain(0);
    ScopedVars Scope(*this);
    Vars = {"g0", "g1", "g2", "p0"};
    for (unsigned V = 0; V != 3; ++V) {
      stmtLine(Main, 1,
               "int v" + std::to_string(V) + " = " +
                   std::to_string(R.nextInRange(-5, 20)) + ";");
      Vars.push_back("v" + std::to_string(V));
    }
    genStmts(Main, 1, Options.MaxDepth, Options.StmtBudget / 2);
    for (unsigned V = 0; V != 3; ++V)
      stmtLine(Main, 1, "print(v" + std::to_string(V) + ");");
  }

  void genWorkersAndMain(bool Locked) {
    NumSems = Locked ? 2 : 1;
    declSems(NumSems);
    unsigned Workers = 2 + unsigned(R.nextBelow(2));
    unsigned PerBody = Options.StmtBudget / (Workers + 1);
    for (unsigned W = 0; W != Workers; ++W) {
      uint32_t Fn = openWorker(W);
      ScopedVars Scope(*this);
      Vars = {"a", "g0", "g1", "g2", "p0"};
      CanCall = true;
      if (Locked) {
        // Shared updates happen under a lock; races only appear if the
        // minimizer (or low statement luck) drops the brackets.
        std::string Pad = "  ";
        GenUnit U;
        U.Head.push_back(Pad + "P(s0);");
        U.Tail.push_back(Pad + "V(s0);");
        U.Removable = true;
        uint32_t Crit = child(Fn, std::move(U));
        genStmts(Crit, 2, 2, PerBody / 2 + 1);
        genStmts(Fn, 1, 2, PerBody / 2);
      } else {
        // Unprotected shared read-modify-writes: deliberate races.
        genStmts(Fn, 1, 2, PerBody);
        stmtLine(Fn, 1, "g" + std::to_string(R.nextBelow(3)) + " = (g" +
                            std::to_string(R.nextBelow(3)) + " + a);");
      }
    }
    uint32_t Main = openMain(Workers);
    ScopedVars Scope(*this);
    Vars = {"g0", "g1", "g2", "p0"};
    CanCall = true;
    genStmts(Main, 1, 2, PerBody);
  }

  void genDeadlockProne() {
    NumSems = 2;
    declSems(NumSems);
    unsigned Workers = 2;
    for (unsigned W = 0; W != Workers; ++W) {
      uint32_t Fn = openWorker(W);
      ScopedVars Scope(*this);
      Vars = {"a", "g0", "g1", "g2", "p0"};
      CanCall = false;
      // Nested lock acquisition; whether the orders oppose each other is
      // the seed's call, so some seeds deadlock and some complete.
      bool Flip = W == 1 && R.nextBelow(2) == 0;
      std::string First = Flip ? "s1" : "s0";
      std::string Second = Flip ? "s0" : "s1";
      GenUnit Outer;
      Outer.Head.push_back("  P(" + First + ");");
      Outer.Tail.push_back("  V(" + First + ");");
      uint32_t O = child(Fn, std::move(Outer));
      genStmts(O, 2, 1, 1);
      GenUnit Inner;
      Inner.Head.push_back("    P(" + Second + ");");
      Inner.Tail.push_back("    V(" + Second + ");");
      uint32_t I = child(O, std::move(Inner));
      genStmts(I, 3, 1, 1 + R.nextBelow(2));
    }
    uint32_t Main = openMain(Workers);
    ScopedVars Scope(*this);
    Vars = {"g0", "g1", "g2", "p0"};
    genStmts(Main, 1, 1, 2);
  }

  void genChannels() {
    NumChans = 1 + unsigned(R.nextBelow(2));
    for (unsigned C = 0; C != NumChans; ++C) {
      unsigned Cap = unsigned(R.nextBelow(3)); // 0 = rendezvous
      stmtLine(0, 0,
               Cap == 0 ? "chan c" + std::to_string(C) + ";"
                        : "chan c" + std::to_string(C) + "[" +
                              std::to_string(Cap) + "];");
    }
    stmtLine(0, 0, "sem join;");
    unsigned Messages = 2 + unsigned(R.nextBelow(4));
    // Producer worker0 sends exactly `Messages` values down c0; main
    // receives the same count, so matched seeds complete and minimizer
    // cuts may block (Deadlock outcome — still differentially checked).
    uint32_t Fn = openWorker(0);
    {
      ScopedVars Scope(*this);
      Vars = {"a", "g0", "g1", "g2", "p0"};
      std::string It = "i" + std::to_string(LocalCounter++);
      GenUnit U;
      U.Head.push_back("  int " + It + " = 0;");
      U.Head.push_back("  for (" + It + " = 0; " + It + " < " +
                       std::to_string(Messages) + "; " + It + " = " + It +
                       " + 1) {");
      U.Tail.push_back("  }");
      uint32_t Loop = child(Fn, std::move(U));
      stmtLine(Loop, 2, "send(c0, (" + It + " * " + expr(1) + "));");
      genBlock(Loop, 2, 1, 1);
    }
    uint32_t Main = openMain(1);
    ScopedVars Scope(*this);
    Vars = {"g0", "g1", "g2", "p0"};
    std::string It = "i" + std::to_string(LocalCounter++);
    GenUnit U;
    U.Head.push_back("  int " + It + " = 0;");
    U.Head.push_back("  for (" + It + " = 0; " + It + " < " +
                     std::to_string(Messages) + "; " + It + " = " + It +
                     " + 1) {");
    U.Tail.push_back("  }");
    uint32_t Loop = child(Main, std::move(U));
    stmtLine(Loop, 2, "g0 = (g0 + recv(c0));");
    genBlock(Loop, 2, 1, 1);
    genStmts(Main, 1, 1, 2);
  }

  Rng R;
  GenOptions Options;
  GenProgram Prog;
  std::vector<std::string> Vars;
  bool CanCall = false;
  bool UseArray = false;
  bool UseInput = false;
  unsigned NumHelpers = 0;
  unsigned NumSems = 0;
  unsigned NumChans = 0;
  unsigned LocalCounter = 0;
};

} // namespace

GenProgram ppd::testing::generateProgram(uint64_t Seed,
                                         const GenOptions &Options) {
  Generator G(Seed, Options);
  GenProgram Prog = G.run();
  Prog.Profile = Options.Profile;
  // Machine parameters: cycle quanta so preemption boundaries vary, and
  // decouple the scheduling stream from the grammar stream. The quantum
  // index must not track the profile index (Seed % 6) — a quantum locked
  // to the profile would mean (say) compute programs never run with a
  // budget wide enough to reach fused-dispatch fast halves.
  static const uint32_t Quanta[] = {1, 2, 3, 5, 8};
  Prog.Quantum = Quanta[(Seed / 5) % 5];
  Prog.SchedSeed = Seed * 2654435761u + 17;
  return Prog;
}

GenProgram ppd::testing::generateProgram(uint64_t Seed) {
  GenOptions Options;
  static const GenProfile Profiles[] = {
      GenProfile::Compute,       GenProfile::SyncHeavy, GenProfile::Racy,
      GenProfile::DeadlockProne, GenProfile::Channels,  GenProfile::Streamed};
  Options.Profile = Profiles[Seed % 6];
  return generateProgram(Seed, Options);
}
