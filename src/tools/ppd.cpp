//===- tools/ppd.cpp - The PPD command-line debugger ----------------------===//
//
// Part of PPD, a reproduction of Miller & Choi, "A Mechanism for Efficient
// Debugging of Parallel Programs" (PLDI 1988).
//
// Drives all three phases of the paper from the command line:
//
//   ppd compile <file.ppl> [options]   preparatory phase: static artifacts
//   ppd run     <file.ppl> [options]   execution phase: run + write the log
//   ppd races   <file.ppl> [options]   run, then §6.4 race detection
//   ppd debug   <file.ppl> [options]   debugging phase: interactive
//                                      flowback session (reads commands
//                                      from stdin; pipe-friendly)
//   ppd serve   <file.ppl> [options]   debugging phase as a daemon: serve
//                                      concurrent sessions over a unix
//                                      socket
//   ppd client  --socket PATH          scriptable client for ppd serve
//                                      (commands from stdin)
//   ppd bots    --tcp HOST:PORT        scripted client-fleet load
//                                      generator against a running server
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "core/DeadlockAnalyzer.h"
#include "core/DebugSession.h"
#include "lang/AstPrinter.h"
#include "log/BufferPool.h"
#include "log/PageStore.h"
#include "log/ProgramDb.h"
#include "server/Bots.h"
#include "server/DebugServer.h"
#include "server/Transport.h"
#include "server/Wire.h"
#include "stream/Ingest.h"
#include "stream/StreamClient.h"
#include "support/ThreadPool.h"
#include "testing/Fuzzer.h"
#include "vm/Machine.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <unistd.h>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace ppd;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  uint64_t Seed = 1;
  uint32_t Quantum = 8;
  std::vector<std::vector<int64_t>> Inputs;
  std::string LogPath;
  std::string Mode = "logging";
  std::string Algorithm = "vectorized";
  bool DumpDisassembly = false;
  bool DumpPdg = false;
  bool DumpSimplified = false;
  bool DumpDatabase = false;
  bool LeafInheritance = false;
  bool LoopBlocks = false;
  std::vector<uint32_t> BreakLines;
  unsigned ReplayThreads = 0;
  bool Prefetch = false;
  std::string ReplayEngine = "jit";
  LogFormat SaveFormat = LogFormat::V2;

  // paged log tier (debug/serve)
  size_t PoolBudget = 0; ///< 0 = PPD_POOL_BUDGET env, else 256 MiB.
  bool WholeLog = false;
  bool NoPpdb = false;

  // serve / client / bots
  std::string SocketPath;
  std::string TcpAddr;              ///< --tcp HOST:PORT
  std::string Transport = "epoll";  ///< --transport epoll | threaded
  uint64_t IdleTimeoutMs = 0;       ///< --idle-timeout-ms (serve)
  std::vector<std::string> ExtraPrograms; ///< --program (serve)
  std::vector<std::string> LogPaths;      ///< --log occurrences (serve)
  unsigned ServerThreads = 0;
  unsigned QueueLimit = 128;
  uint64_t TimeoutMs = 0;
  unsigned MaxSessions = 64;
  bool MetricsDump = false;

  // bots
  unsigned NumBots = 100;           ///< --bots
  unsigned BotQueries = 10;         ///< --queries
  std::string BotCommand = "where 0"; ///< --bot-command
  uint32_t BotProgram = 0;          ///< --bot-program
  bool BotShared = false;           ///< --shared-session
  bool BotNoHold = false;           ///< --no-hold
  unsigned BotThinkMs = 0;          ///< --think-ms

  // streaming ingest (run --stream / serve)
  std::string StreamAddr;       ///< --stream (run): server socket path.
  uint32_t StreamProgram = 0;   ///< --stream-program (run)
  uint32_t SectionRecords = 64; ///< --section-records (run)
  std::string SpillDir;         ///< --spill-dir (serve)
  size_t SpillBudget = 0;       ///< --spill-budget (serve); 0 = unbounded
  unsigned CreditWindow = 8;    ///< --credit-window (serve)
  bool SpillSync = false;       ///< --spill-sync (serve)

  // fuzz
  uint64_t FuzzRuns = 100;
  bool Minimize = false;
  std::string ReproOut;
};

void usage() {
  std::fprintf(stderr, R"(usage: ppd <command> <file.ppl> [options]

commands:
  compile   preparatory phase: report the static artifacts
  run       execution phase: run the object code, generate the log
  races     run, then detect races on the execution instance
  debug     debugging phase: interactive flowback session
  serve     debugging phase as a daemon: concurrent sessions over a unix
            socket and/or TCP (ppd serve file.ppl --socket PATH
            [--tcp HOST:PORT]); the epoll dispatcher serves both
            listeners from one thread (--transport threaded keeps the
            legacy thread-per-connection loop as a differential oracle)
  client    scriptable client for a running server (ppd client --socket
            PATH | --tcp HOST:PORT; commands from stdin: open/query/step/
            races/stats/close/tail/frontier/shutdown/quit; `tail ID CMD`
            debugs a live stream's frontier, `frontier [ID]` shows ingest
            progress)
  bots      client-fleet load generator (ppd bots --tcp HOST:PORT --bots N
            --queries Q; takes no file argument): N concurrent scripted
            sessions — connect, open, Q serial queries, hold until the
            fleet finishes, close — with client-side p50/p99 per query
  fuzz      differential fuzzing: random PPL programs through every
            redundant pipeline pair (ppd fuzz --runs N --seed S; takes no
            file argument)
  compact   convert a v1 log to the compact v2 format in place
            (ppd compact file.log; the file argument is the log, not a
            .ppl program)

options:
  --seed N              scheduler seed (default 1); one seed = one
                        execution instance
  --quantum N           preemption quantum in instructions (default 8)
  --input v,v,...       input stream for the next process (repeatable:
                        first use feeds pid 0, second pid 1, ...)
  --break LINE          halt the machine when any process reaches a
                        statement on this source line (repeatable)
  --save-log PATH       (run) write the execution log to PATH
  --log-format V        (run) on-disk format: v2 (compact, default) | v1
  --log PATH            (debug) load the log instead of re-running; either
                        format is detected, and --replay-threads workers
                        decode v2 process sections in parallel
  --mode M              (run) plain | logging | fulltrace
  --race-strategy A     (races) vectorized (default) | indexed | naive;
                        all three report identical races (--algorithm is
                        a synonym)
  --leaf-inheritance    partitioner: unlog small call-graph leaves
  --loop-blocks         partitioner: loops become their own e-blocks
  --replay-threads N    (debug) worker threads for parallel replay
                        (default 0 = serial)
  --prefetch            (debug) warm neighboring intervals in the
                        background after each query
  --replay-engine E     (debug/serve) jit (default) | decoded | legacy;
                        all three regenerate bit-identical traces; jit
                        degrades to decoded where unavailable
  --pool-budget N[kmg]  (debug/serve) buffer-pool byte budget for paged
                        logs (default 256m; the PPD_POOL_BUDGET env var
                        overrides the default, the flag overrides both)
  --whole-log           (debug/serve) decode --log files whole up front
                        instead of paging sections in on demand
  --no-ppdb             (run/debug/serve) neither read nor write the
                        .ppdb program-database sidecar
  --dump-ir             (compile) disassemble both artifacts
  --dump-pdg            (compile) static PDGs as DOT
  --dump-simplified     (compile) simplified static graphs + sync units
  --dump-db             (compile) the program database
  --stream ADDR         (run) live attach: ship completed log sections to
                        the ppd server at this endpoint — a unix socket
                        path or tcp:HOST:PORT — while the program
                        runs (requires --mode logging, the default); the
                        server's `tail`/`frontier` client commands then
                        debug the still-running program
  --stream-program N    (run --stream) program index on the server the
                        stream belongs to (default 0)
  --section-records N   (run --stream) unsealed-record threshold that
                        seals a consistent cut (default 64)
  --spill-dir PATH      (serve) append each ingested cut to a spill file
                        here and finalize a canonical v2 log when the
                        stream ends (default: ingest in memory only)
  --spill-budget N[kmg] (serve) total spill bytes across all ingest
                        sessions; past it new cuts are rejected Busy
                        (default unbounded)
  --credit-window N     (serve) SectionData frames a tracer may have in
                        flight before it must stall (default 8)
  --spill-sync          (serve) fdatasync the spill file after every
                        acked cut: an ack then survives power loss, not
                        just a server crash (finalized logs are always
                        fsynced through their rename)
  --socket PATH         (serve/client/bots) unix socket path
  --tcp HOST:PORT       (serve) also listen on TCP (port 0 = ephemeral;
                        the bound port is printed); (client/bots/run
                        --stream) connect over TCP instead of --socket
  --transport T         (serve) epoll (default) | threaded; threaded is
                        the legacy unix-only loop kept as the byte-level
                        differential oracle
  --idle-timeout-ms N   (serve, epoll) disconnect clients with no traffic
                        for N ms (default 0 = never)
  --program FILE        (serve) serve another program too (repeatable);
                        the Nth --log pairs with the Nth program
  --server-threads N    (serve) request worker threads (default 0 =
                        handle requests inline, one at a time)
  --queue-limit N       (serve) max queued+running requests before Busy
                        (default 128)
  --timeout-ms N        (serve) drop requests older than N ms at dequeue
                        (default 0 = never)
  --max-sessions N      (serve) concurrent session cap (default 64)
  --metrics-dump        (serve) print the metrics report on shutdown
  --bots N              (bots) fleet size (default 100)
  --queries N           (bots) serial queries per bot (default 10)
  --bot-command CMD     (bots) the debugger command each query sends
                        (default "where 0")
  --bot-program N       (bots) program index bots open (default 0)
  --shared-session      (bots) every bot queries one shared session
                        instead of opening its own
  --no-hold             (bots) disconnect each bot as it finishes instead
                        of holding until the whole fleet is done
  --think-ms N          (bots) mean pause between a query's answer and the
                        next query (default 0 = back-to-back saturation;
                        nonzero paces the fleet so latency measures the
                        server, not the client's own queue depth)
  --runs N              (fuzz) number of generated programs (default 100)
  --minimize            (fuzz) delta-debug the first divergence down to a
                        minimal repro before reporting it
  --repro-out PATH      (fuzz) write the (minimized) repro source to PATH
                        when a divergence is found
)");
}

/// Parses "N", "Nk", "Nm", "Ng" (binary multiples) into bytes.
bool parseByteSize(const char *V, size_t &Out) {
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  if (End == V)
    return false;
  size_t Mult = 1;
  switch (*End) {
  case 'k': case 'K': Mult = size_t(1) << 10; ++End; break;
  case 'm': case 'M': Mult = size_t(1) << 20; ++End; break;
  case 'g': case 'G': Mult = size_t(1) << 30; ++End; break;
  default: break;
  }
  if (*End != '\0')
    return false;
  Out = size_t(N) * Mult;
  return true;
}

/// Buffer-pool budget resolution: --pool-budget flag, then the
/// PPD_POOL_BUDGET environment variable (how CI squeezes every test under
/// a 1 MiB pool), then 256 MiB.
size_t effectivePoolBudget(const CliOptions &Opts) {
  if (Opts.PoolBudget != 0)
    return Opts.PoolBudget;
  if (const char *Env = std::getenv("PPD_POOL_BUDGET")) {
    size_t Bytes = 0;
    if (parseByteSize(Env, Bytes) && Bytes != 0)
      return Bytes;
  }
  return size_t(256) << 20;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  // `client` and `bots` talk to a running server and `fuzz` generates
  // its own programs; none of them takes a program file.
  int First = 2;
  if (Opts.Command != "client" && Opts.Command != "fuzz" &&
      Opts.Command != "bots") {
    if (Argc < 3)
      return false;
    Opts.File = Argv[2];
    First = 3;
  }
  for (int I = First; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--quantum") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Quantum = uint32_t(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--input") {
      const char *V = Next();
      if (!V)
        return false;
      std::vector<int64_t> Stream;
      std::stringstream Ss(V);
      std::string Item;
      while (std::getline(Ss, Item, ','))
        Stream.push_back(std::strtoll(Item.c_str(), nullptr, 10));
      Opts.Inputs.push_back(std::move(Stream));
    } else if (Arg == "--save-log" || Arg == "--log") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.LogPath = V;
      if (Arg == "--log")
        Opts.LogPaths.push_back(V);
    } else if (Arg == "--socket") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SocketPath = V;
    } else if (Arg == "--tcp") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TcpAddr = V;
      std::string Host;
      uint16_t Port = 0;
      if (!splitHostPort(Opts.TcpAddr, Host, Port)) {
        std::fprintf(stderr, "error: bad --tcp '%s' (want HOST:PORT)\n", V);
        return false;
      }
    } else if (Arg == "--transport") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Transport = V;
      if (Opts.Transport != "epoll" && Opts.Transport != "threaded") {
        std::fprintf(stderr,
                     "error: unknown transport %s (epoll | threaded)\n", V);
        return false;
      }
    } else if (Arg == "--idle-timeout-ms") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.IdleTimeoutMs = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--spill-sync") {
      Opts.SpillSync = true;
    } else if (Arg == "--bots") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.NumBots = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--queries") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.BotQueries = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--bot-command") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.BotCommand = V;
    } else if (Arg == "--bot-program") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.BotProgram = uint32_t(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--shared-session") {
      Opts.BotShared = true;
    } else if (Arg == "--no-hold") {
      Opts.BotNoHold = true;
    } else if (Arg == "--think-ms") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.BotThinkMs = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--program") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ExtraPrograms.push_back(V);
    } else if (Arg == "--server-threads") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ServerThreads = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--queue-limit") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.QueueLimit = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--timeout-ms") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TimeoutMs = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--max-sessions") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.MaxSessions = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--metrics-dump") {
      Opts.MetricsDump = true;
    } else if (Arg == "--stream") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.StreamAddr = V;
    } else if (Arg == "--stream-program") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.StreamProgram = uint32_t(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--section-records") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SectionRecords = uint32_t(std::strtoul(V, nullptr, 10));
      if (Opts.SectionRecords == 0) {
        std::fprintf(stderr, "error: --section-records must be positive\n");
        return false;
      }
    } else if (Arg == "--spill-dir") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SpillDir = V;
    } else if (Arg == "--spill-budget") {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseByteSize(V, Opts.SpillBudget) || Opts.SpillBudget == 0) {
        std::fprintf(stderr, "error: bad --spill-budget '%s' (expected "
                             "N, Nk, Nm, or Ng)\n",
                     V);
        return false;
      }
    } else if (Arg == "--credit-window") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.CreditWindow = unsigned(std::strtoul(V, nullptr, 10));
      if (Opts.CreditWindow == 0) {
        std::fprintf(stderr, "error: --credit-window must be positive\n");
        return false;
      }
    } else if (Arg == "--pool-budget") {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseByteSize(V, Opts.PoolBudget) || Opts.PoolBudget == 0) {
        std::fprintf(stderr, "error: bad --pool-budget '%s' (expected "
                             "N, Nk, Nm, or Ng)\n",
                     V);
        return false;
      }
    } else if (Arg == "--whole-log") {
      Opts.WholeLog = true;
    } else if (Arg == "--no-ppdb") {
      Opts.NoPpdb = true;
    } else if (Arg == "--log-format") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "v1") == 0) {
        Opts.SaveFormat = LogFormat::V1;
      } else if (std::strcmp(V, "v2") == 0) {
        Opts.SaveFormat = LogFormat::V2;
      } else {
        std::fprintf(stderr, "error: unknown log format %s\n", V);
        return false;
      }
    } else if (Arg == "--mode") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Mode = V;
    } else if (Arg == "--race-strategy" || Arg == "--algorithm") {
      // --algorithm is the historical spelling, kept as a synonym.
      const char *V = Next();
      if (!V)
        return false;
      Opts.Algorithm = V;
    } else if (Arg == "--dump-ir") {
      Opts.DumpDisassembly = true;
    } else if (Arg == "--dump-pdg") {
      Opts.DumpPdg = true;
    } else if (Arg == "--dump-simplified") {
      Opts.DumpSimplified = true;
    } else if (Arg == "--dump-db") {
      Opts.DumpDatabase = true;
    } else if (Arg == "--break") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.BreakLines.push_back(uint32_t(std::strtoul(V, nullptr, 10)));
    } else if (Arg == "--leaf-inheritance") {
      Opts.LeafInheritance = true;
    } else if (Arg == "--loop-blocks") {
      Opts.LoopBlocks = true;
    } else if (Arg == "--replay-threads") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ReplayThreads = unsigned(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--prefetch") {
      Opts.Prefetch = true;
    } else if (Arg == "--replay-engine") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ReplayEngine = V;
    } else if (Arg == "--runs") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.FuzzRuns = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--minimize") {
      Opts.Minimize = true;
    } else if (Arg == "--repro-out") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.ReproOut = V;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<CompiledProgram> compileFile(const CliOptions &Opts) {
  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
    return nullptr;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  CompileOptions COpts;
  COpts.EBlocks.LeafInheritance = Opts.LeafInheritance;
  COpts.EBlocks.LoopBlocks = Opts.LoopBlocks;
  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Buffer.str(), COpts, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return nullptr;
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str());
  return Prog;
}

int cmdCompile(const CliOptions &Opts) {
  auto Prog = compileFile(Opts);
  if (!Prog)
    return 1;
  std::printf("%s: %zu function(s), %zu e-block(s), %zu sync unit(s), "
              "%u variable(s), %u shared\n",
              Opts.File.c_str(), Prog->Funcs.size(), Prog->EBlocks.size(),
              Prog->Units.size(), Prog->Symbols->numVars(),
              Prog->Symbols->NumSharedVars);
  for (const EBlockInfo &E : Prog->EBlocks) {
    std::printf("  e-block %u in %s (%s): USED={", E.Id,
                Prog->func(E.Func).Name.c_str(),
                E.Kind == EBlockKind::Loop ? "loop" : "segment");
    for (size_t I = 0; I != E.Used.size(); ++I)
      std::printf("%s%s", I ? "," : "",
                  Prog->Symbols->var(E.Used[I]).Name.c_str());
    std::printf("} DEFINED={");
    for (size_t I = 0; I != E.Defined.size(); ++I)
      std::printf("%s%s", I ? "," : "",
                  Prog->Symbols->var(E.Defined[I]).Name.c_str());
    std::printf("}\n");
  }
  if (Opts.DumpDisassembly)
    for (const CompiledFunction &F : Prog->Funcs) {
      std::printf("\n%s",
                  F.Object.disassemble(F.Name + " [object]").c_str());
      std::printf("\n%s", F.Emu.disassemble(F.Name + " [emu]").c_str());
    }
  if (Opts.DumpPdg)
    for (const auto &F : Prog->Ast->Funcs)
      std::printf("\n%s", Prog->Pdgs[F->Index]->dot(*Prog->Ast).c_str());
  if (Opts.DumpSimplified)
    for (const auto &F : Prog->Ast->Funcs)
      std::printf("\n%s",
                  Prog->Simplified[F->Index]->dot(*Prog->Ast).c_str());
  if (Opts.DumpDatabase)
    std::printf("\n%s", Prog->Database->dump(*Prog->Ast).c_str());
  return 0;
}

/// Resolves --replay-engine; prints the error and returns false on an
/// unknown name (callers exit 64, matching --race-strategy).
bool resolveReplayEngine(const CliOptions &Opts, ReplayEngineKind &Kind) {
  if (parseReplayEngine(Opts.ReplayEngine, Kind))
    return true;
  std::fprintf(stderr, "error: unknown replay engine '%s' (expected jit, "
                       "decoded, or legacy)\n",
               Opts.ReplayEngine.c_str());
  return false;
}

MachineOptions machineOptions(const CliOptions &Opts,
                              const CompiledProgram &Prog) {
  MachineOptions MOpts;
  MOpts.Seed = Opts.Seed;
  MOpts.Quantum = Opts.Quantum;
  // The legacy replay tier pairs with the legacy run-phase interpreter,
  // so `--replay-engine legacy` exercises the reference path end to end.
  if (Opts.ReplayEngine == "legacy")
    MOpts.UseDecoded = false;
  MOpts.ProcessInputs = Opts.Inputs;
  if (Opts.Mode == "plain")
    MOpts.Mode = RunMode::Plain;
  else if (Opts.Mode == "fulltrace")
    MOpts.Mode = RunMode::FullTrace;
  else
    MOpts.Mode = RunMode::Logging;
  for (uint32_t Line : Opts.BreakLines) {
    bool Found = false;
    for (StmtId Id = 0; Id != Prog.Ast->numStmts(); ++Id)
      if (Prog.Ast->stmt(Id)->getLoc().Line == Line &&
          !isa<BlockStmt>(Prog.Ast->stmt(Id))) {
        MOpts.Breakpoints.push_back(Id);
        Found = true;
      }
    if (!Found)
      std::fprintf(stderr, "warning: no statement on line %u\n", Line);
  }
  return MOpts;
}

void reportRun(const CompiledProgram &Prog, const Machine &M,
               const RunResult &Result) {
  for (const OutputRecord &O : M.output())
    std::printf("[p%u] %lld\n", O.Pid, (long long)O.Value);
  switch (Result.Outcome) {
  case RunResult::Status::Completed:
    std::printf("-- completed: %llu steps, %zu process(es), log %zu "
                "bytes\n",
                (unsigned long long)Result.Steps, M.processes().size(),
                M.log().byteSize());
    break;
  case RunResult::Status::Failed:
    std::printf("-- FAILED: %s\n", Result.Error.str().c_str());
    if (Result.Error.Stmt != InvalidId)
      std::printf("   at: %s (line %u)\n",
                  AstPrinter::summarize(*Prog.Ast->stmt(Result.Error.Stmt))
                      .c_str(),
                  Prog.Ast->stmt(Result.Error.Stmt)->getLoc().Line);
    break;
  case RunResult::Status::Deadlock: {
    std::printf("-- DEADLOCK after %llu steps\n",
                (unsigned long long)Result.Steps);
    DeadlockAnalyzer Analyzer(Prog, M.log());
    std::printf("%s",
                Analyzer.analyze(Result.Deadlock).str(*Prog.Ast).c_str());
    break;
  }
  case RunResult::Status::StepLimit:
    std::printf("-- step limit reached\n");
    break;
  case RunResult::Status::Breakpoint:
    std::printf("-- BREAKPOINT: process %u at %s (line %u)\n",
                Result.BreakPid,
                AstPrinter::summarize(*Prog.Ast->stmt(Result.BreakStmt))
                    .c_str(),
                Prog.Ast->stmt(Result.BreakStmt)->getLoc().Line);
    break;
  }
}

/// Opens \p LogPath as a paged store and resolves its `.ppdb` sidecar:
/// a valid sidecar hands back its persisted index and parallel dynamic
/// graph, anything else skims a fresh index from the store and
/// (re)writes the sidecar (leaving \p Graph null — the controller
/// rebuilds it lazily if a query needs it). Returns null on open
/// failure with the reason in \p Error.
std::shared_ptr<const PageStore>
openPagedStore(const CliOptions &Opts, const CompiledProgram &Prog,
               const std::string &LogPath,
               std::shared_ptr<const LogIndex> &Index,
               std::shared_ptr<const ParallelDynamicGraph> &Graph,
               std::string &Error) {
  auto Store = PageStore::open(LogPath, &Error);
  if (!Store)
    return nullptr;
  if (Opts.NoPpdb)
    return Store;
  std::string DbPath = programDbPathFor(LogPath);
  ProgramDbStatus Status = readProgramDb(DbPath, Prog, *Store, Index, &Graph);
  if (Status == ProgramDbStatus::Ok) {
    std::printf("program database: %s (warm)\n", DbPath.c_str());
    return Store;
  }
  Index = std::make_shared<const LogIndex>(*Store);
  if (writeProgramDb(DbPath, Prog, *Store, *Index))
    std::printf("program database: %s rebuilt (was %s)\n", DbPath.c_str(),
                programDbStatusName(Status));
  else
    std::fprintf(stderr, "warning: cannot write %s\n", DbPath.c_str());
  return Store;
}

int cmdRun(const CliOptions &Opts) {
  auto Prog = compileFile(Opts);
  if (!Prog)
    return 1;
  MachineOptions MOpts = machineOptions(Opts, *Prog);
  if (!Opts.StreamAddr.empty() && MOpts.Mode != RunMode::Logging) {
    std::fprintf(stderr,
                 "error: --stream needs --mode logging (sections are "
                 "sealed from the incremental log)\n");
    return 64;
  }
  Machine M(*Prog, MOpts);

  // Live attach: seal consistent cuts from the growing log at scheduler
  // rounds and ship them; the server debugs the frontier while we run.
  std::unique_ptr<stream::StreamClient> Stream;
  if (!Opts.StreamAddr.empty()) {
    stream::StreamClientOptions SCOpts;
    SCOpts.SocketPath = Opts.StreamAddr;
    SCOpts.Sealer.ProgramIndex = Opts.StreamProgram;
    SCOpts.Sealer.ProgramHash = programHash(*Prog);
    SCOpts.Sealer.SectionRecords = Opts.SectionRecords;
    Stream = std::make_unique<stream::StreamClient>(SCOpts);
    if (!Stream->start()) {
      std::fprintf(stderr, "error: cannot attach stream: %s\n",
                   Stream->error().c_str());
      return 1;
    }
    M.onRound(
        [&Stream](Machine &Mach) { Stream->pollRound(Mach.log()); });
  }

  RunResult Result = M.run();
  reportRun(*Prog, M, Result);

  if (Stream) {
    if (Stream->finish(M.log()))
      std::printf("-- streamed %llu section(s) in %llu cut(s) to %s "
                  "(stream %llu, %llu stall(s))\n",
                  (unsigned long long)Stream->sectionsShipped(),
                  (unsigned long long)Stream->cutsSealed(),
                  Opts.StreamAddr.c_str(),
                  (unsigned long long)Stream->streamId(),
                  (unsigned long long)Stream->stalls());
    else
      std::fprintf(stderr, "warning: stream did not complete: %s\n",
                   Stream->error().c_str());
  }
  if (!Opts.LogPath.empty()) {
    std::unique_ptr<ThreadPool> SavePool;
    if (Opts.ReplayThreads > 0)
      SavePool = std::make_unique<ThreadPool>(Opts.ReplayThreads);
    if (!M.log().save(Opts.LogPath, Opts.SaveFormat, SavePool.get())) {
      std::fprintf(stderr, "error: cannot write log to %s\n",
                   Opts.LogPath.c_str());
      return 1;
    }
    std::printf("-- log written to %s\n", Opts.LogPath.c_str());
    // Drop the `.ppdb` sidecar next to a v2 log so the first debug open
    // is already warm (skims here, where the run just paid far more).
    if (Opts.SaveFormat == LogFormat::V2 && !Opts.NoPpdb) {
      std::string Error;
      auto Store = PageStore::open(Opts.LogPath, &Error);
      if (Store) {
        LogIndex Index(*Store, SavePool.get());
        std::string DbPath = programDbPathFor(Opts.LogPath);
        if (writeProgramDb(DbPath, *Prog, *Store, Index))
          std::printf("-- program database written to %s\n", DbPath.c_str());
        else
          std::fprintf(stderr, "warning: cannot write %s\n", DbPath.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot reopen %s for the program "
                             "database: %s\n",
                     Opts.LogPath.c_str(), Error.c_str());
      }
    }
  }
  return Result.Outcome == RunResult::Status::Completed ? 0 : 2;
}

int cmdRaces(const CliOptions &Opts) {
  auto Prog = compileFile(Opts);
  if (!Prog)
    return 1;
  Machine M(*Prog, machineOptions(Opts, *Prog));
  RunResult Result = M.run();
  reportRun(*Prog, M, Result);

  PpdController Controller(*Prog, M.takeLog());
  RaceAlgorithm Algorithm = RaceAlgorithm::Vectorized;
  if (!parseRaceAlgorithm(Opts.Algorithm, Algorithm)) {
    std::fprintf(stderr, "error: unknown race strategy '%s' (expected "
                         "naive, indexed, or vectorized)\n",
                 Opts.Algorithm.c_str());
    return 64;
  }
  auto Races = Controller.detectRaces(Algorithm);
  if (Races.raceFree()) {
    std::printf("-- execution instance is race-free (Def 6.4); %llu edge "
                "pair(s) examined\n",
                (unsigned long long)Races.PairsExamined);
    return 0;
  }
  RaceDetector Detector(Controller.parallelGraph(), *Prog->Symbols);
  std::printf("-- %zu race(s) found (%llu pair(s) examined):\n",
              Races.Races.size(),
              (unsigned long long)Races.PairsExamined);
  for (const Race &R : Races.Races)
    std::printf("   %s\n", Detector.describe(R, *Prog->Ast).c_str());
  return 3;
}

//===----------------------------------------------------------------------===//
// The interactive debugging phase
//===----------------------------------------------------------------------===//

int cmdDebug(const CliOptions &Opts) {
  ReplayEngineKind Engine;
  if (!resolveReplayEngine(Opts, Engine))
    return 64;
  auto Prog = compileFile(Opts);
  if (!Prog)
    return 1;

  PpdControllerOptions COpts;
  COpts.Service.Threads = Opts.ReplayThreads;
  COpts.Service.Prefetch = Opts.Prefetch;
  COpts.Service.Engine = Engine;

  // A --log file opens paged by default: mmap the store, adopt (or
  // rebuild) the .ppdb sidecar, and let queries fault sections in through
  // the pool. --whole-log restores the old eager decode; files the store
  // rejects (v1 logs) fall back to it with a note.
  std::unique_ptr<PpdController> Controller;
  if (!Opts.LogPath.empty() && !Opts.WholeLog) {
    std::string Error;
    std::shared_ptr<const LogIndex> Index;
    std::shared_ptr<const ParallelDynamicGraph> Graph;
    auto Store =
        openPagedStore(Opts, *Prog, Opts.LogPath, Index, Graph, Error);
    if (Store) {
      size_t Budget = effectivePoolBudget(Opts);
      auto Pool = std::make_shared<BufferPool>(Budget);
      std::printf("paged log: %u process(es), %zu bytes on disk, pool "
                  "budget %zu bytes\n",
                  Store->numProcs(), Store->fileBytes(), Budget);
      COpts.AdoptedGraph = std::move(Graph);
      Controller = std::make_unique<PpdController>(
          *Prog, PagedLog{std::move(Store), std::move(Pool)},
          std::move(Index), COpts);
    } else {
      std::fprintf(stderr, "note: %s; loading whole\n", Error.c_str());
    }
  }
  if (!Controller) {
    ExecutionLog Log;
    if (!Opts.LogPath.empty()) {
      std::unique_ptr<ThreadPool> LoadPool;
      if (Opts.ReplayThreads > 0)
        LoadPool = std::make_unique<ThreadPool>(Opts.ReplayThreads);
      if (!ExecutionLog::load(Opts.LogPath, Log, LoadPool.get())) {
        std::fprintf(stderr, "error: cannot load log %s\n",
                     Opts.LogPath.c_str());
        return 1;
      }
      std::printf("loaded log: %zu process(es)\n", Log.Procs.size());
    } else {
      Machine M(*Prog, machineOptions(Opts, *Prog));
      RunResult Result = M.run();
      reportRun(*Prog, M, Result);
      Log = M.takeLog();
    }
    Controller =
        std::make_unique<PpdController>(*Prog, std::move(Log), COpts);
  }
  DebugSession Session(*Prog, *Controller);
  std::printf("PPD debugging phase. Type 'help' for commands.\n");
  std::string Line;
  while (std::printf("(ppd) "), std::fflush(stdout),
         std::getline(std::cin, Line)) {
    if (Line == "quit" || Line == "q")
      break;
    std::fputs(Session.execute(Line).c_str(), stdout);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// The debug server and its scriptable client
//===----------------------------------------------------------------------===//

/// Compiles \p File and produces its execution log: loaded from
/// \p LogPath when given, generated by running the machine otherwise.
std::unique_ptr<CompiledProgram> prepareProgram(const CliOptions &Opts,
                                                const std::string &File,
                                                const std::string &LogPath,
                                                ExecutionLog &Log) {
  CliOptions FileOpts = Opts;
  FileOpts.File = File;
  auto Prog = compileFile(FileOpts);
  if (!Prog)
    return nullptr;
  if (!LogPath.empty()) {
    if (!ExecutionLog::load(LogPath, Log)) {
      std::fprintf(stderr, "error: cannot load log %s\n", LogPath.c_str());
      return nullptr;
    }
  } else {
    Machine M(*Prog, machineOptions(FileOpts, *Prog));
    M.run();
    Log = M.takeLog();
  }
  return Prog;
}

int cmdServe(const CliOptions &Opts) {
  if (Opts.SocketPath.empty() && Opts.TcpAddr.empty()) {
    std::fprintf(stderr,
                 "error: serve needs --socket PATH and/or --tcp "
                 "HOST:PORT\n");
    return 64;
  }
  if (Opts.Transport == "threaded" &&
      (!Opts.TcpAddr.empty() || Opts.IdleTimeoutMs != 0)) {
    std::fprintf(stderr,
                 "error: --transport threaded is the unix-only legacy "
                 "oracle; --tcp and --idle-timeout-ms need epoll\n");
    return 64;
  }
  ReplayEngineKind Engine;
  if (!resolveReplayEngine(Opts, Engine))
    return 64;
  DebugServerOptions SOpts;
  SOpts.Threads = Opts.ServerThreads;
  SOpts.QueueLimit = Opts.QueueLimit;
  SOpts.TimeoutMs = Opts.TimeoutMs;
  SOpts.Registry.MaxSessions = Opts.MaxSessions;
  SOpts.Registry.ReplayThreads = Opts.ReplayThreads;
  SOpts.Registry.Engine = Engine;
  SOpts.Registry.PoolBudget = effectivePoolBudget(Opts);
  DebugServer Server(SOpts);

  std::vector<std::string> Files;
  Files.push_back(Opts.File);
  Files.insert(Files.end(), Opts.ExtraPrograms.begin(),
               Opts.ExtraPrograms.end());
  for (size_t I = 0; I != Files.size(); ++I) {
    std::string LogPath =
        I < Opts.LogPaths.size() ? Opts.LogPaths[I] : std::string();
    // --log files serve paged (every session of the program faults
    // sections through the registry's shared pool); generated logs and
    // --whole-log stay on the eager path.
    bool Paged = false;
    uint32_t Index = 0;
    if (!LogPath.empty() && !Opts.WholeLog) {
      CliOptions FileOpts = Opts;
      FileOpts.File = Files[I];
      auto Prog = compileFile(FileOpts);
      if (!Prog)
        return 1;
      std::string Error;
      std::shared_ptr<const LogIndex> PagedIndex;
      std::shared_ptr<const ParallelDynamicGraph> PagedGraph;
      auto Store = openPagedStore(Opts, *Prog, LogPath, PagedIndex,
                                  PagedGraph, Error);
      if (Store) {
        Index = Server.addProgram(std::move(Prog),
                                  PagedLog{std::move(Store), nullptr},
                                  std::move(PagedIndex),
                                  std::move(PagedGraph));
        Paged = true;
      } else {
        std::fprintf(stderr, "note: %s; loading whole\n", Error.c_str());
      }
    }
    if (!Paged) {
      ExecutionLog Log;
      auto Prog = prepareProgram(Opts, Files[I], LogPath, Log);
      if (!Prog)
        return 1;
      Index = Server.addProgram(std::move(Prog), std::move(Log));
    }
    std::printf("program %u: %s%s\n", Index, Files[I].c_str(),
                Paged ? " (paged)" : "");
  }

  // Streaming ingest is always armed: `ppd run --stream` opens a stream
  // against any served program; --spill-dir adds durability, and
  // --spill-budget bounds the total it may accumulate.
  stream::IngestOptions IOpts;
  if (!Opts.SpillDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Opts.SpillDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "error: cannot create spill directory %s: %s\n",
                   Opts.SpillDir.c_str(), Ec.message().c_str());
      return 1;
    }
  }
  IOpts.SpillDir = Opts.SpillDir;
  IOpts.CreditWindow = Opts.CreditWindow;
  IOpts.SpillBudget = Opts.SpillBudget;
  IOpts.SpillSync = Opts.SpillSync;
  stream::IngestRegistry Ingest(Server, IOpts);
  Server.setStreamDispatcher(
      [&Ingest](const Request &Req) { return Ingest.dispatch(Req); });

  raiseFdLimit();
  int Rc;
  if (Opts.Transport == "threaded") {
    int ListenFd = listenUnix(Opts.SocketPath);
    if (ListenFd < 0)
      return 1;
    std::printf("ppd server listening on %s\n", Opts.SocketPath.c_str());
    std::fflush(stdout);
    Rc = runUnixServer(Server, ListenFd, Opts.SocketPath);
  } else {
    EpollServerOptions EOpts;
    if (!Opts.SocketPath.empty()) {
      EOpts.UnixListenFd = listenUnix(Opts.SocketPath);
      if (EOpts.UnixListenFd < 0)
        return 1;
      EOpts.UnixPath = Opts.SocketPath;
      std::printf("ppd server listening on %s\n", Opts.SocketPath.c_str());
    }
    if (!Opts.TcpAddr.empty()) {
      uint16_t BoundPort = 0;
      EOpts.TcpListenFd = listenTcp(Opts.TcpAddr, &BoundPort);
      if (EOpts.TcpListenFd < 0) {
        if (EOpts.UnixListenFd >= 0) {
          ::close(EOpts.UnixListenFd);
          ::unlink(Opts.SocketPath.c_str());
        }
        return 1;
      }
      std::string Host;
      uint16_t Port = 0;
      splitHostPort(Opts.TcpAddr, Host, Port);
      // E2e drivers and scripts parse this line for the ephemeral port.
      std::printf("ppd server listening on tcp %s port %u\n",
                  Host.empty() ? "0.0.0.0" : Host.c_str(),
                  unsigned(BoundPort));
    }
    std::fflush(stdout);
    EOpts.IdleTimeoutMs = Opts.IdleTimeoutMs;
    Rc = runEpollServer(Server, EOpts);
  }
  if (Opts.MetricsDump)
    std::printf("%s", Server.metricsReport().c_str());
  return Rc;
}

/// Endpoint resolution shared by client and bots: --tcp wins, --socket
/// otherwise. Empty string when neither was given.
std::string clientAddress(const CliOptions &Opts) {
  if (!Opts.TcpAddr.empty())
    return "tcp:" + Opts.TcpAddr;
  return Opts.SocketPath;
}

int cmdBots(const CliOptions &Opts) {
  std::string Address = clientAddress(Opts);
  if (Address.empty()) {
    std::fprintf(stderr,
                 "error: bots needs --socket PATH or --tcp HOST:PORT\n");
    return 64;
  }
  BotFleetOptions BOpts;
  BOpts.Address = Address;
  BOpts.NumBots = Opts.NumBots;
  BOpts.QueriesPerBot = Opts.BotQueries;
  BOpts.Command = Opts.BotCommand;
  BOpts.ProgramIndex = Opts.BotProgram;
  BOpts.SharedSession = Opts.BotShared;
  BOpts.HoldOpen = !Opts.BotNoHold;
  BOpts.ThinkMs = Opts.BotThinkMs;
  BOpts.Progress = [](const std::string &Line) {
    std::fprintf(stderr, "%s\n", Line.c_str());
  };
  BotFleetResult R = runBotFleet(BOpts);
  std::printf("bots: %u requested, %llu connected, %llu completed, %llu "
              "failed%s\n",
              Opts.NumBots, (unsigned long long)R.Connected,
              (unsigned long long)R.Completed,
              (unsigned long long)R.Failed,
              R.TimedOut ? " (deadline hit)" : "");
  std::printf("peak concurrent connections: %llu\n",
              (unsigned long long)R.PeakConcurrent);
  std::printf("queries: %llu answered in %llu ms, latency mean %lluus, "
              "p50 <%lluus, p99 <%lluus\n",
              (unsigned long long)R.QueriesAnswered,
              (unsigned long long)R.WallMs, (unsigned long long)R.MeanUs,
              (unsigned long long)R.P50us, (unsigned long long)R.P99us);
  if (R.BusyRetries != 0)
    std::printf("busy retries: %llu\n", (unsigned long long)R.BusyRetries);
  if (!R.Error.empty())
    std::fprintf(stderr, "first failure: %s\n", R.Error.c_str());
  return R.ok() ? 0 : 1;
}

/// One client command line → one request, or no request (errors, quit).
/// Returns false to end the script loop.
bool clientCommand(const std::string &Line, Request &Req, bool &Send) {
  Send = false;
  std::stringstream Args(Line);
  std::string Cmd;
  if (!(Args >> Cmd) || Cmd.empty())
    return true;
  if (Cmd == "quit" || Cmd == "q")
    return false;

  auto ParseSession = [&](bool Required) {
    uint64_t Id = 0;
    if (!(Args >> Id) && Required)
      return uint64_t(0);
    return Id;
  };

  if (Cmd == "open") {
    Req.Type = MsgType::OpenSession;
    uint64_t Index = 0;
    Args >> Index;
    Req.ProgramIndex = uint32_t(Index);
    Send = true;
  } else if (Cmd == "query") {
    Req.Type = MsgType::Query;
    Req.SessionId = ParseSession(true);
    std::string Rest;
    std::getline(Args, Rest);
    size_t Start = Rest.find_first_not_of(' ');
    Req.Command = Start == std::string::npos ? "" : Rest.substr(Start);
    Send = Req.SessionId != 0;
  } else if (Cmd == "step") {
    Req.Type = MsgType::Step;
    Req.SessionId = ParseSession(true);
    std::string Dir;
    Args >> Dir;
    Req.Direction = Dir == "fwd" ? 1 : 0;
    Send = Req.SessionId != 0;
  } else if (Cmd == "races") {
    Req.Type = MsgType::Races;
    Req.SessionId = ParseSession(true);
    Send = Req.SessionId != 0;
  } else if (Cmd == "stats") {
    Req.Type = MsgType::Stats;
    Req.SessionId = ParseSession(false);
    Send = true;
  } else if (Cmd == "close") {
    Req.Type = MsgType::CloseSession;
    Req.SessionId = ParseSession(true);
    Send = Req.SessionId != 0;
  } else if (Cmd == "tail") {
    // tail STREAM CMD... — run a debug command against the stream's
    // current frontier (the prefix of the run ingested so far).
    Req.Type = MsgType::TailQuery;
    Req.StreamId = ParseSession(true);
    std::string Rest;
    std::getline(Args, Rest);
    size_t Start = Rest.find_first_not_of(' ');
    Req.Command = Start == std::string::npos ? "" : Rest.substr(Start);
    Send = Req.StreamId != 0;
  } else if (Cmd == "frontier") {
    // frontier [STREAM] — ingest progress of one stream, or all of them.
    Req.Type = MsgType::Frontier;
    Req.StreamId = ParseSession(false);
    Send = true;
  } else if (Cmd == "shutdown") {
    Req.Type = MsgType::Shutdown;
    Send = true;
  } else {
    std::fprintf(stderr, "client: unknown command '%s'\n", Cmd.c_str());
    return true;
  }
  if (!Send)
    std::fprintf(stderr, "client: '%s' needs a session id\n", Cmd.c_str());
  return true;
}

void printResponse(const Response &Resp) {
  switch (Resp.Type) {
  case RespType::SessionOpened:
    std::printf("session %llu\n", (unsigned long long)Resp.SessionId);
    break;
  case RespType::Result:
  case RespType::StatsText:
    std::fputs(Resp.Text.c_str(), stdout);
    break;
  case RespType::Closed:
    std::printf("closed\n");
    break;
  case RespType::Busy:
    std::printf("BUSY\n");
    break;
  case RespType::Error:
    std::printf("ERROR %u: %s\n", unsigned(Resp.Code), Resp.Text.c_str());
    break;
  case RespType::ShutdownAck:
    std::printf("shutdown requested\n");
    break;
  case RespType::Ack:
    std::printf("ack stream %llu, credits %u\n",
                (unsigned long long)Resp.StreamId, Resp.Credits);
    break;
  }
}

int cmdClient(const CliOptions &Opts) {
  std::string Address = clientAddress(Opts);
  if (Address.empty()) {
    std::fprintf(stderr,
                 "error: client needs --socket PATH or --tcp HOST:PORT\n");
    return 64;
  }
  ClientConnection Conn;
  if (!Conn.connect(Address)) {
    std::fprintf(stderr, "error: cannot connect to %s\n", Address.c_str());
    return 1;
  }
  std::string Line;
  while (std::getline(std::cin, Line)) {
    Request Req;
    bool Send = false;
    if (!clientCommand(Line, Req, Send))
      break;
    if (!Send)
      continue;
    Response Resp;
    if (!Conn.roundTrip(std::move(Req), Resp)) {
      std::fprintf(stderr, "error: connection lost\n");
      return 1;
    }
    printResponse(Resp);
    std::fflush(stdout);
  }
  return 0;
}

int cmdCompact(const CliOptions &Opts) {
  // The positional argument is the log file here, not a .ppl program.
  std::string Message;
  switch (compactLogFile(Opts.File, Message)) {
  case CompactResult::Converted:
    std::printf("-- %s\n", Message.c_str());
    return 0;
  case CompactResult::AlreadyV2:
    std::printf("-- %s\n", Message.c_str());
    return 0;
  case CompactResult::Error:
    std::fprintf(stderr, "error: %s\n", Message.c_str());
    return 1;
  }
  return 1;
}

int cmdFuzz(const CliOptions &Opts) {
  testing::FuzzOptions FOpts;
  FOpts.Runs = Opts.FuzzRuns;
  FOpts.FirstSeed = Opts.Seed;
  FOpts.Minimize = Opts.Minimize;
  FOpts.Log = [](const std::string &Line) {
    std::fprintf(stderr, "%s\n", Line.c_str());
  };

  testing::FuzzResult Result = testing::runFuzz(FOpts);
  std::printf("%s", testing::summarizeFuzz(Result).c_str());

  if (Result.Failed && !Opts.ReproOut.empty()) {
    std::ofstream Out(Opts.ReproOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.ReproOut.c_str());
      return 1;
    }
    Out << "// ppd fuzz repro: seed " << Result.FailingSeed << ", oracle "
        << Result.Report.Oracle << "\n"
        << Result.ReproSource;
    std::fprintf(stderr, "repro written to %s\n", Opts.ReproOut.c_str());
  }
  return Result.Failed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return 64;
  }
  if (Opts.Command == "compile")
    return cmdCompile(Opts);
  if (Opts.Command == "run")
    return cmdRun(Opts);
  if (Opts.Command == "races")
    return cmdRaces(Opts);
  if (Opts.Command == "debug")
    return cmdDebug(Opts);
  if (Opts.Command == "serve")
    return cmdServe(Opts);
  if (Opts.Command == "client")
    return cmdClient(Opts);
  if (Opts.Command == "bots")
    return cmdBots(Opts);
  if (Opts.Command == "fuzz")
    return cmdFuzz(Opts);
  if (Opts.Command == "compact")
    return cmdCompact(Opts);
  // One error path for every unrecognized command: name it, show usage,
  // and exit with a code distinct from argument-parse failures (64).
  std::fprintf(stderr, "error: unknown command '%s'\n",
               Opts.Command.c_str());
  usage();
  return 65;
}
