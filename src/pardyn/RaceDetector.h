//===- pardyn/RaceDetector.h - §6.4 race detection --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race detection over the parallel dynamic graph, Defs 6.1–6.4: two
/// *simultaneous* internal edges (neither ordered before the other) race
/// when their shared READ/WRITE sets exhibit a read/write or write/write
/// conflict; an execution instance is race-free iff no pair of
/// simultaneous edges races. Race-freedom of the instance is what
/// validates the prelogs/unit logs for replay (§5.5).
///
/// Two algorithms are provided, reproducing §7's closing remark that
/// "the problem of finding all pairs of possible conflicting edges is more
/// expensive ... we are currently investigating algorithms to reduce the
/// cost":
///
///   * NaiveAllPairs — check every pair of edges from different processes;
///   * VarIndexed    — index edges by the shared variables they touch and
///     only compare pairs that conflict on some variable, pruning the
///     happens-before checks to candidate pairs.
///
/// Both return the same race set (a property the tests assert);
/// bench_race_detection measures the gap (experiment E5).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PARDYN_RACEDETECTOR_H
#define PPD_PARDYN_RACEDETECTOR_H

#include "pardyn/ParallelDynamicGraph.h"
#include "sema/Symbols.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

enum class RaceKind : uint8_t { WriteWrite, ReadWrite };

struct Race {
  uint32_t SharedIdx = 0; ///< dense shared-variable index.
  VarId Var = InvalidId;  ///< the shared variable.
  EdgeRef First;          ///< canonical order: lower pid first.
  EdgeRef Second;
  RaceKind Kind = RaceKind::WriteWrite;

  friend bool operator==(const Race &A, const Race &B) {
    return A.SharedIdx == B.SharedIdx && A.First == B.First &&
           A.Second == B.Second && A.Kind == B.Kind;
  }
};

enum class RaceAlgorithm { NaiveAllPairs, VarIndexed };

struct RaceDetectionResult {
  std::vector<Race> Races;
  /// Edge pairs whose ordering was actually tested — the cost driver §7
  /// worries about.
  uint64_t PairsExamined = 0;

  bool raceFree() const { return Races.empty(); } // Def 6.4
};

class RaceDetector {
public:
  RaceDetector(const ParallelDynamicGraph &Graph, const SymbolTable &Symbols);

  RaceDetectionResult detect(RaceAlgorithm Algorithm) const;

  /// Human-readable description naming the variable and both edges.
  std::string describe(const Race &R, const Program &P) const;

  /// Grouped report: races collapsed by (variable, kind, the two ending
  /// statements), with occurrence counts — loops otherwise repeat the
  /// same conflict once per iteration's edge.
  std::string summarize(const RaceDetectionResult &Result,
                        const Program &P) const;

private:
  void classifyPair(EdgeRef A, EdgeRef B, std::vector<Race> &Out) const;
  Race makeRace(EdgeRef A, EdgeRef B, uint32_t SharedIdx,
                RaceKind Kind) const;

  const ParallelDynamicGraph &Graph;
  const SymbolTable &Symbols;
  std::vector<VarId> SharedToVar; ///< SharedIndex → VarId.
};

} // namespace ppd

#endif // PPD_PARDYN_RACEDETECTOR_H
