//===- pardyn/RaceDetector.h - §6.4 race detection --------------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race detection over the parallel dynamic graph, Defs 6.1–6.4: two
/// *simultaneous* internal edges (neither ordered before the other) race
/// when their shared READ/WRITE sets exhibit a read/write or write/write
/// conflict; an execution instance is race-free iff no pair of
/// simultaneous edges races. Race-freedom of the instance is what
/// validates the prelogs/unit logs for replay (§5.5).
///
/// Three algorithms are provided, reproducing — and then closing — §7's
/// remark that "the problem of finding all pairs of possible conflicting
/// edges is more expensive ... we are currently investigating algorithms
/// to reduce the cost":
///
///   * NaiveAllPairs — check every pair of edges from different processes;
///   * VarIndexed    — index edges by the shared variables they touch and
///     only compare pairs that conflict on some variable, pruning the
///     happens-before checks to candidate pairs;
///   * Vectorized    — the hardware-speed tier: per-edge simultaneity
///     bitset rows from the batched happens-before closure
///     (EdgeClosure.h), an inverted shared-var → writer/reader-edge
///     index, and SIMD word kernels (support/Simd.h) enumerating
///     conflicting partners by row ∧ mask, optionally sharded across a
///     work-stealing ThreadPool with per-shard scratch and a
///     deterministic merge.
///
/// All return the same race list byte-for-byte (asserted by the tests and
/// the fuzzer's oracle matrix); bench_race_detection measures the gaps
/// (experiment E5). PairsExamined is a per-algorithm cost counter: naive
/// counts every cross-process pair, VarIndexed its deduplicated candidate
/// pairs, Vectorized the candidate (pair, variable) combinations its
/// masks enumerate.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PARDYN_RACEDETECTOR_H
#define PPD_PARDYN_RACEDETECTOR_H

#include "pardyn/ParallelDynamicGraph.h"
#include "sema/Symbols.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ppd {

enum class RaceKind : uint8_t { WriteWrite, ReadWrite };

struct Race {
  uint32_t SharedIdx = 0; ///< dense shared-variable index.
  VarId Var = InvalidId;  ///< the shared variable.
  EdgeRef First;          ///< canonical order: lower pid first.
  EdgeRef Second;
  RaceKind Kind = RaceKind::WriteWrite;

  friend bool operator==(const Race &A, const Race &B) {
    return A.SharedIdx == B.SharedIdx && A.First == B.First &&
           A.Second == B.Second && A.Kind == B.Kind;
  }
};

enum class RaceAlgorithm { NaiveAllPairs, VarIndexed, Vectorized };

const char *raceAlgorithmName(RaceAlgorithm Algorithm);
/// Parses "naive" | "indexed" | "vectorized" (the CLI --race-strategy
/// values). Returns false on anything else, leaving \p Out untouched.
bool parseRaceAlgorithm(const std::string &Name, RaceAlgorithm &Out);

struct RaceDetectionResult {
  std::vector<Race> Races;
  /// Candidate combinations whose ordering was actually tested — the cost
  /// driver §7 worries about. Per-algorithm semantics (see file comment).
  uint64_t PairsExamined = 0;
  /// Vectorized only: wall time spent building the happens-before
  /// closure rows (the E5 "closure build" column).
  uint64_t ClosureBuildNs = 0;

  bool raceFree() const { return Races.empty(); } // Def 6.4
};

class ThreadPool;

class RaceDetector {
public:
  RaceDetector(const ParallelDynamicGraph &Graph, const SymbolTable &Symbols);

  /// Runs one detection pass. \p Pool is only consulted by Vectorized:
  /// with workers, the per-variable sweep is sharded across them (the
  /// merge is deterministic — results are byte-identical at any worker
  /// count); null or worker-less pools run the sweep on the calling
  /// thread. Not safe to call concurrently on one detector instance: the
  /// legacy algorithms classify pairs through member scratch sets (which
  /// is what keeps them allocation-free per pair).
  RaceDetectionResult detect(RaceAlgorithm Algorithm,
                             ThreadPool *Pool = nullptr) const;

  /// Human-readable description naming the variable and both edges.
  std::string describe(const Race &R, const Program &P) const;

  /// Grouped report: races collapsed by (variable, kind, the two ending
  /// statements), with occurrence counts — loops otherwise repeat the
  /// same conflict once per iteration's edge.
  std::string summarize(const RaceDetectionResult &Result,
                        const Program &P) const;

private:
  void classifyPair(EdgeRef A, EdgeRef B, std::vector<Race> &Out) const;
  Race makeRace(EdgeRef A, EdgeRef B, uint32_t SharedIdx,
                RaceKind Kind) const;
  RaceDetectionResult detectVectorized(ThreadPool *Pool) const;
  static void canonicalize(RaceDetectionResult &Result);

  const ParallelDynamicGraph &Graph;
  const SymbolTable &Symbols;
  std::vector<VarId> SharedToVar; ///< SharedIndex → VarId.
  /// Per-pair classification scratch, sized once to the shared-var
  /// universe so classifyPair never allocates (it used to copy three
  /// BitVarSets per pair). Mutable: detect() is logically const.
  mutable BitVarSet ScratchWW, ScratchRW, ScratchWR;
};

} // namespace ppd

#endif // PPD_PARDYN_RACEDETECTOR_H
