//===- pardyn/ParallelDynamicGraph.cpp ------------------------------------===//
//
// Part of PPD. See ParallelDynamicGraph.h.
//
//===----------------------------------------------------------------------===//

#include "pardyn/ParallelDynamicGraph.h"

#include "lang/Ast.h"
#include "lang/AstPrinter.h"
#include "support/DotWriter.h"

#include <algorithm>
#include <cassert>

using namespace ppd;

ParallelDynamicGraph::ParallelDynamicGraph(unsigned NumSharedVars,
                                           uint32_t NumProcs)
    : NumShared(NumSharedVars) {
  Nodes.resize(NumProcs);
  Edges.resize(NumProcs);
}

ParallelDynamicGraph::ParallelDynamicGraph(const ExecutionLog &Log,
                                           unsigned NumSharedVars)
    : ParallelDynamicGraph(NumSharedVars, uint32_t(Log.Procs.size())) {
  for (uint32_t Pid = 0; Pid != Log.Procs.size(); ++Pid)
    addProcess(Pid, Log.Procs[Pid]);
  finalize();
}

void ParallelDynamicGraph::addProcess(uint32_t Pid, const ProcessLog &PL) {
  assert(Pid < Nodes.size() && "pid out of range");
  assert(Nodes[Pid].empty() && "process added twice");
  // Collect the process's sync nodes and internal edges.
  for (uint32_t Idx = 0; Idx != PL.Records.size(); ++Idx) {
    const LogRecord &R = PL.Records[Idx];
    if (R.Kind != LogRecordKind::SyncEvent)
      continue;
    SyncNode N;
    N.Kind = R.Sync;
    N.Object = R.Id;
    N.Seq = R.Seq;
    N.PartnerSeq = R.PartnerSeq;
    N.Stmt = R.Stmt;
    N.RecordIdx = Idx;

    if (!Nodes[Pid].empty()) {
      InternalEdge E;
      E.Pid = Pid;
      E.EndNode = uint32_t(Nodes[Pid].size());
      // Pre-size to the shared segment so the insert loops never
      // reallocate (ids are SharedIndex values, bounded by NumShared).
      E.Reads.reserveFor(NumShared);
      E.Writes.reserveFor(NumShared);
      for (uint32_t S : R.ReadSet)
        E.Reads.insert(S);
      for (uint32_t S : R.WriteSet)
        E.Writes.insert(S);
      Edges[Pid].push_back(std::move(E));
    }
    Nodes[Pid].push_back(std::move(N));
  }
}

void ParallelDynamicGraph::appendProcess(uint32_t Pid, const ProcessLog &PL,
                                         uint32_t FromRecord) {
  assert(Pid <= Nodes.size() && "pid out of range");
  if (Pid == Nodes.size()) {
    Nodes.emplace_back();
    Edges.emplace_back();
  }
  for (uint32_t Idx = FromRecord; Idx < PL.Records.size(); ++Idx) {
    const LogRecord &R = PL.Records[Idx];
    if (R.Kind != LogRecordKind::SyncEvent)
      continue;
    SyncNode N;
    N.Kind = R.Sync;
    N.Object = R.Id;
    N.Seq = R.Seq;
    N.PartnerSeq = R.PartnerSeq;
    N.Stmt = R.Stmt;
    N.RecordIdx = Idx;

    if (!Nodes[Pid].empty()) {
      InternalEdge E;
      E.Pid = Pid;
      E.EndNode = uint32_t(Nodes[Pid].size());
      E.Reads.reserveFor(NumShared);
      E.Writes.reserveFor(NumShared);
      for (uint32_t S : R.ReadSet)
        E.Reads.insert(S);
      for (uint32_t S : R.WriteSet)
        E.Writes.insert(S);
      Edges[Pid].push_back(std::move(E));
    }
    Nodes[Pid].push_back(std::move(N));
  }
}

void ParallelDynamicGraph::adoptProcess(uint32_t Pid,
                                        std::vector<SyncNode> ProcNodes,
                                        std::vector<InternalEdge> ProcEdges) {
  assert(Pid < Nodes.size() && "pid out of range");
  assert(Nodes[Pid].empty() && "process added twice");
  assert((ProcNodes.empty() ? ProcEdges.empty()
                            : ProcEdges.size() == ProcNodes.size() - 1) &&
         "edge i must end at node i+1");
  Nodes[Pid] = std::move(ProcNodes);
  Edges[Pid] = std::move(ProcEdges);
}

void ParallelDynamicGraph::finalize() {
  // Seq lookup table.
  uint64_t MaxSeq = 0;
  for (const std::vector<SyncNode> &ProcNodes : Nodes)
    for (const SyncNode &N : ProcNodes)
      MaxSeq = std::max(MaxSeq, N.Seq);
  BySeq.assign(size_t(MaxSeq) + 1, SyncNodeRef());
  for (uint32_t Pid = 0; Pid != Nodes.size(); ++Pid)
    for (uint32_t Idx = 0; Idx != Nodes[Pid].size(); ++Idx)
      BySeq[Nodes[Pid][Idx].Seq] = {Pid, Idx};

  // Vector clocks, processed in global seq order — a topological order of
  // the graph, since every synchronization edge goes from a lower to a
  // higher sequence number.
  std::vector<SyncNodeRef> Order;
  for (const SyncNodeRef &Ref : BySeq)
    if (Ref.valid())
      Order.push_back(Ref);

  for (const SyncNodeRef &Ref : Order) {
    SyncNode &N = Nodes[Ref.Pid][Ref.Index];
    N.Clock.assign(Nodes.size(), 0);
    if (Ref.Index > 0) {
      const SyncNode &Prev = Nodes[Ref.Pid][Ref.Index - 1];
      N.Clock = Prev.Clock;
    }
    if (N.PartnerSeq != NoPartner) {
      assert(N.PartnerSeq < BySeq.size() && BySeq[N.PartnerSeq].valid() &&
             "dangling partner sequence");
      const SyncNode &Partner = node(BySeq[N.PartnerSeq]);
      assert(!Partner.Clock.empty() && "partner processed after dependent");
      for (size_t I = 0; I != N.Clock.size(); ++I)
        N.Clock[I] = std::max(N.Clock[I], Partner.Clock[I]);
    }
    N.Clock[Ref.Pid] = Ref.Index + 1;
  }
  FinalizeWatermark = BySeq.size();
}

void ParallelDynamicGraph::finalizeTail() {
  // Zero-extend already-finalized clocks when streaming grew the process
  // count: component p stays 0 for old nodes because none of a
  // later-arriving process's nodes can happen-before a node sealed in an
  // earlier cut.
  for (std::vector<SyncNode> &ProcNodes : Nodes)
    for (SyncNode &N : ProcNodes)
      if (!N.Clock.empty() && N.Clock.size() < Nodes.size())
        N.Clock.resize(Nodes.size(), 0);

  // Extend the seq lookup and register the appended nodes (empty clock =
  // not yet finalized). Their seqs all land at or past the watermark —
  // the ingest session rejects anything else before it applies.
  uint64_t MaxSeq = BySeq.empty() ? 0 : uint64_t(BySeq.size()) - 1;
  for (const std::vector<SyncNode> &ProcNodes : Nodes)
    for (const SyncNode &N : ProcNodes)
      MaxSeq = std::max(MaxSeq, N.Seq);
  if (BySeq.size() < size_t(MaxSeq) + 1)
    BySeq.resize(size_t(MaxSeq) + 1);
  for (uint32_t Pid = 0; Pid != Nodes.size(); ++Pid)
    for (uint32_t Idx = 0; Idx != Nodes[Pid].size(); ++Idx)
      if (Nodes[Pid][Idx].Clock.empty())
        BySeq[Nodes[Pid][Idx].Seq] = {Pid, Idx};

  // Same clock step as finalize(), resumed at the watermark: processing
  // in global seq order is still a topological order, and every
  // predecessor (previous node of the process, partner) is either below
  // the watermark — finalized in an earlier round, zero-extended above —
  // or earlier in this walk.
  for (uint64_t S = FinalizeWatermark; S < BySeq.size(); ++S) {
    const SyncNodeRef Ref = BySeq[S];
    if (!Ref.valid())
      continue;
    SyncNode &N = Nodes[Ref.Pid][Ref.Index];
    if (!N.Clock.empty())
      continue; // registered before this round's watermark
    N.Clock.assign(Nodes.size(), 0);
    if (Ref.Index > 0) {
      const SyncNode &Prev = Nodes[Ref.Pid][Ref.Index - 1];
      N.Clock = Prev.Clock;
      N.Clock.resize(Nodes.size(), 0);
    }
    if (N.PartnerSeq != NoPartner) {
      assert(N.PartnerSeq < BySeq.size() && BySeq[N.PartnerSeq].valid() &&
             "dangling partner sequence");
      const SyncNode &Partner = node(BySeq[N.PartnerSeq]);
      assert(!Partner.Clock.empty() && "partner processed after dependent");
      for (size_t I = 0; I != Partner.Clock.size(); ++I)
        N.Clock[I] = std::max(N.Clock[I], Partner.Clock[I]);
    }
    N.Clock[Ref.Pid] = Ref.Index + 1;
  }
  FinalizeWatermark = BySeq.size();
}

std::vector<EdgeRef> ParallelDynamicGraph::allEdges() const {
  std::vector<EdgeRef> Out;
  for (uint32_t Pid = 0; Pid != Edges.size(); ++Pid)
    for (uint32_t I = 0; I != Edges[Pid].size(); ++I)
      Out.push_back({Pid, I + 1});
  return Out;
}

SyncNodeRef ParallelDynamicGraph::partnerOf(SyncNodeRef Ref) const {
  const SyncNode &N = node(Ref);
  if (N.PartnerSeq == NoPartner || N.PartnerSeq >= BySeq.size())
    return SyncNodeRef();
  return BySeq[N.PartnerSeq];
}

bool ParallelDynamicGraph::happensBefore(SyncNodeRef A, SyncNodeRef B) const {
  if (A == B)
    return false;
  // A → B iff B's clock covers A in A's own process: the clock component
  // VC[p] counts how many of p's nodes happen-before-or-equal the owner.
  return node(B).Clock[A.Pid] >= A.Index + 1;
}

bool ParallelDynamicGraph::edgeHappensBefore(EdgeRef A, EdgeRef B) const {
  // end(A) = A.EndNode; start(B) = B.EndNode - 1.
  SyncNodeRef EndA{A.Pid, A.EndNode};
  SyncNodeRef StartB{B.Pid, B.EndNode - 1};
  if (EndA == StartB)
    return true; // same node: A's end is B's start (consecutive edges)
  return happensBefore(EndA, StartB);
}

bool ParallelDynamicGraph::simultaneous(EdgeRef A, EdgeRef B) const {
  if (A.Pid == B.Pid)
    return false; // same process: always ordered
  return !edgeHappensBefore(A, B) && !edgeHappensBefore(B, A);
}

EdgeRef ParallelDynamicGraph::edgeContaining(uint32_t Pid,
                                             uint32_t RecordIdx) const {
  const std::vector<SyncNode> &ProcNodes = Nodes[Pid];
  for (uint32_t I = 1; I < ProcNodes.size(); ++I)
    if (RecordIdx > ProcNodes[I - 1].RecordIdx &&
        RecordIdx <= ProcNodes[I].RecordIdx)
      return {Pid, I};
  // Past the last sync node: the process stopped mid-edge. Treat the open
  // tail as an edge ending at a virtual node after the last one — callers
  // that only need ordering can use the last node conservatively. We
  // return the edge ending at the last node if the position is beyond it.
  if (!ProcNodes.empty() && RecordIdx > ProcNodes.back().RecordIdx &&
      ProcNodes.size() >= 2)
    return {Pid, uint32_t(ProcNodes.size() - 1)};
  return EdgeRef();
}

EdgeRef ParallelDynamicGraph::lastWriterBefore(EdgeRef Reader,
                                               uint32_t SharedIdx,
                                               EdgeRef *RaceWitness) const {
  if (RaceWitness)
    *RaceWitness = EdgeRef();
  EdgeRef Best;
  for (uint32_t Pid = 0; Pid != Edges.size(); ++Pid) {
    for (uint32_t I = 0; I != Edges[Pid].size(); ++I) {
      const InternalEdge &E = Edges[Pid][I];
      if (!E.Writes.contains(SharedIdx))
        continue;
      EdgeRef Ref{Pid, I + 1};
      if (Ref == Reader)
        continue;
      if (Pid == Reader.Pid) {
        // Same process: ordered by position.
        if (Ref.EndNode > Reader.EndNode)
          continue;
      } else if (simultaneous(Ref, Reader)) {
        if (RaceWitness)
          *RaceWitness = Ref;
        continue;
      } else if (!edgeHappensBefore(Ref, Reader)) {
        continue; // strictly after the reader
      }
      if (!Best.valid() || edgeHappensBefore(Best, Ref))
        Best = Ref;
    }
  }
  return Best;
}

std::vector<EdgeRef>
ParallelDynamicGraph::writersBefore(EdgeRef Reader, uint32_t SharedIdx,
                                    EdgeRef *RaceWitness) const {
  if (RaceWitness)
    *RaceWitness = EdgeRef();
  std::vector<EdgeRef> Writers;
  for (uint32_t Pid = 0; Pid != Edges.size(); ++Pid) {
    for (uint32_t I = 0; I != Edges[Pid].size(); ++I) {
      const InternalEdge &E = Edges[Pid][I];
      if (!E.Writes.contains(SharedIdx))
        continue;
      EdgeRef Ref{Pid, I + 1};
      if (Ref == Reader)
        continue;
      if (Pid == Reader.Pid) {
        if (Ref.EndNode > Reader.EndNode)
          continue;
      } else if (simultaneous(Ref, Reader)) {
        if (RaceWitness)
          *RaceWitness = Ref;
        continue;
      } else if (!edgeHappensBefore(Ref, Reader)) {
        continue;
      }
      Writers.push_back(Ref);
    }
  }
  std::sort(Writers.begin(), Writers.end(),
            [this](EdgeRef A, EdgeRef B) {
              return Nodes[A.Pid][A.EndNode].Seq >
                     Nodes[B.Pid][B.EndNode].Seq;
            });
  return Writers;
}

std::string ParallelDynamicGraph::dot(const Program &P) const {
  DotWriter W("parallel_dynamic_graph");
  auto NodeId = [](uint32_t Pid, uint32_t Idx) {
    return "p" + std::to_string(Pid) + "_n" + std::to_string(Idx);
  };

  for (uint32_t Pid = 0; Pid != Nodes.size(); ++Pid) {
    W.beginCluster("p" + std::to_string(Pid),
                   "process " + std::to_string(Pid));
    for (uint32_t Idx = 0; Idx != Nodes[Pid].size(); ++Idx) {
      const SyncNode &N = Nodes[Pid][Idx];
      std::string Label = syncKindName(N.Kind);
      if (N.Stmt != InvalidId)
        Label += "\n" + AstPrinter::summarize(*P.stmt(N.Stmt));
      W.node(NodeId(Pid, Idx), Label, {"shape=circle"});
      if (Idx > 0) {
        const InternalEdge &E = Edges[Pid][Idx - 1];
        std::string Attr = "style=bold";
        std::string EdgeLabel;
        if (!E.Reads.empty())
          EdgeLabel += "R:" + std::to_string(E.Reads.size());
        if (!E.Writes.empty())
          EdgeLabel += " W:" + std::to_string(E.Writes.size());
        std::vector<std::string> Attrs = {Attr};
        if (!EdgeLabel.empty())
          Attrs.push_back("label=\"" + DotWriter::escape(EdgeLabel) + "\"");
        W.edge(NodeId(Pid, Idx - 1), NodeId(Pid, Idx), Attrs);
      }
    }
    W.endCluster();
  }

  // Synchronization edges across processes.
  for (uint32_t Pid = 0; Pid != Nodes.size(); ++Pid)
    for (uint32_t Idx = 0; Idx != Nodes[Pid].size(); ++Idx) {
      SyncNodeRef Partner = partnerOf({Pid, Idx});
      if (Partner.valid())
        W.edge(NodeId(Partner.Pid, Partner.Index), NodeId(Pid, Idx),
               {"style=dashed", "constraint=false"});
    }
  return W.str();
}
