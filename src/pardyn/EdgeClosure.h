//===- pardyn/EdgeClosure.h - Batched happens-before closure ----*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batched edge-ordering closure for the vectorized race detector. The
/// legacy detectors answer "are edges A and B simultaneous?" (Def 6.1) one
/// pair at a time through two vector-clock queries; this class computes
/// the whole relation up front and turns the question into a single bit
/// test.
///
/// The key structural fact: vector clocks are componentwise monotone along
/// each process's node sequence (they were computed in topological order
/// with componentwise max — the scalar form of a word-wide OR closure).
/// Hence, for a fixed edge B and a fixed other process p, the edges of p
/// ordered *before* B form a prefix of p's edge sequence, the edges
/// ordered *after* B form a suffix, and the simultaneous edges are exactly
/// the contiguous interval between them. The closure therefore reduces to
/// one [lo, hi) interval per (edge, process) pair — found by reading one
/// clock component and binary-searching another — and the per-edge
/// "simultaneous" bitset row is materialized by word-filling those
/// intervals into a flat VarSetArena.
///
/// Rows are indexed by a dense global edge id (process-major, end-node
/// order), which is also the order RaceDetector's canonical race sort
/// expects. When a trace is so large that E² bits exceed MaxRowBytes the
/// rows are skipped and callers fall back to the interval bounds, which
/// are always present and answer the same question with two compares.
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PARDYN_EDGECLOSURE_H
#define PPD_PARDYN_EDGECLOSURE_H

#include "pardyn/ParallelDynamicGraph.h"
#include "support/FixedVarSet.h"

#include <cstdint>
#include <vector>

namespace ppd {

class EdgeClosure {
public:
  /// Builds the closure over every internal edge of \p Graph. Rows are
  /// materialized unless they would exceed \p MaxRowBytes.
  explicit EdgeClosure(const ParallelDynamicGraph &Graph,
                       size_t MaxRowBytes = size_t(256) << 20);

  uint32_t numEdges() const { return NumEdges; }
  uint32_t numProcs() const { return uint32_t(Base.size()); }

  /// Dense id of \p E: process-major, end-node order.
  uint32_t globalId(EdgeRef E) const { return Base[E.Pid] + E.EndNode - 1; }
  EdgeRef edgeOf(uint32_t Gid) const {
    uint32_t Pid = PidOf[Gid];
    return EdgeRef{Pid, Gid - Base[Pid] + 1};
  }

  /// Whether the bitset rows were materialized (small/medium traces).
  bool hasRows() const { return Rows.numRows() != 0; }

  /// The edges simultaneous with global edge \p Gid, one bit per global
  /// edge id. Only valid when hasRows().
  const FixedVarSet simultaneousRow(uint32_t Gid) const {
    return Rows.row(Gid);
  }

  /// Def 6.1 simultaneity as a closure query. With rows: one bit test;
  /// without: two compares against the precomputed interval bounds.
  bool simultaneous(uint32_t A, uint32_t B) const {
    if (hasRows())
      return Rows.row(A).contains(B);
    uint32_t P = PidOf[B];
    const Interval &I = Bounds[size_t(A) * Base.size() + P];
    return B >= I.Lo && B < I.Hi;
  }

  /// Wall time spent building the closure, for the E5 bench column.
  uint64_t buildNanos() const { return BuildNanos; }
  /// Row-arena footprint (0 when rows were skipped).
  size_t rowBytes() const { return Rows.bytes(); }

private:
  /// Global-id interval [Lo, Hi) of one process's edges simultaneous with
  /// one edge. Empty intervals are Lo == Hi.
  struct Interval {
    uint32_t Lo = 0;
    uint32_t Hi = 0;
  };

  std::vector<uint32_t> Base;  ///< first global id per process.
  std::vector<uint32_t> PidOf; ///< global id → process.
  /// Per (edge, process) simultaneity interval, row-major by edge.
  std::vector<Interval> Bounds;
  VarSetArena Rows; ///< one E-bit row per edge; empty when too large.
  uint32_t NumEdges = 0;
  uint64_t BuildNanos = 0;
};

} // namespace ppd

#endif // PPD_PARDYN_EDGECLOSURE_H
