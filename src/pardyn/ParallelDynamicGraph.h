//===- pardyn/ParallelDynamicGraph.h - §6 superstructure --------*- C++ -*-===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *parallel dynamic program dependence graph* (§4.3, §6.1, Fig 6.1):
/// the subset of the dynamic graph that abstracts process interactions —
/// synchronization nodes connected by internal edges (within a process)
/// and synchronization edges (between processes). It is built directly
/// from the execution log's sync-event records; as the paper notes, it can
/// be constructed during execution, with the detailed local dependences
/// filled in later by replay.
///
/// Ordering uses Lamport happens-before [25] computed as vector clocks:
/// node A → node B iff A's clock is componentwise ≤ B's. Edges are ordered
/// by Def §6.1: e1 → e2 iff end(e1) → start(e2). Internal edges carry the
/// shared READ/WRITE sets recorded at execution time (Def 6.2), the inputs
/// to race detection (Defs 6.3/6.4).
///
//===----------------------------------------------------------------------===//

#ifndef PPD_PARDYN_PARALLELDYNAMICGRAPH_H
#define PPD_PARDYN_PARALLELDYNAMICGRAPH_H

#include "log/ExecutionLog.h"
#include "support/VarSet.h"

#include <string>
#include <vector>

namespace ppd {

class SymbolTable;
class Program;

/// Identifies a synchronization node: process + position in that process's
/// sync-node sequence.
struct SyncNodeRef {
  uint32_t Pid = InvalidId;
  uint32_t Index = InvalidId;

  bool valid() const { return Pid != InvalidId; }
  friend bool operator==(SyncNodeRef A, SyncNodeRef B) {
    return A.Pid == B.Pid && A.Index == B.Index;
  }
};

struct SyncNode {
  SyncKind Kind = SyncKind::ProcStart;
  uint32_t Object = 0;       ///< semaphore/channel/function id.
  uint64_t Seq = 0;          ///< global sequence number.
  uint64_t PartnerSeq = NoPartner;
  StmtId Stmt = InvalidId;
  uint32_t RecordIdx = 0;    ///< index of the record in the process log.
  /// Vector clock: VC[p] = number of p's sync nodes that happen-before or
  /// equal this node.
  std::vector<uint32_t> Clock;
};

/// The internal edge ending at node Index of process Pid (Index >= 1; the
/// edge's start node is Index-1).
struct InternalEdge {
  uint32_t Pid = 0;
  uint32_t EndNode = 0;
  BitVarSet Reads;  ///< SharedIndex bits (Def 6.2 READ_SET).
  BitVarSet Writes; ///< SharedIndex bits (WRITE_SET).
};

/// Identifies an internal edge: (pid, end-node index).
struct EdgeRef {
  uint32_t Pid = InvalidId;
  uint32_t EndNode = InvalidId;

  bool valid() const { return Pid != InvalidId; }
  friend bool operator==(EdgeRef A, EdgeRef B) {
    return A.Pid == B.Pid && A.EndNode == B.EndNode;
  }
};

class ParallelDynamicGraph {
public:
  ParallelDynamicGraph(const ExecutionLog &Log, unsigned NumSharedVars);

  /// Incremental construction, for callers that materialize one process's
  /// records at a time (the paged controller pins sections through a
  /// buffer pool and never holds the whole log): construct with the
  /// process count, addProcess() each section in any order, finalize()
  /// once. The finished graph is identical to the whole-log constructor's.
  ParallelDynamicGraph(unsigned NumSharedVars, uint32_t NumProcs);
  void addProcess(uint32_t Pid, const ProcessLog &PL);
  void finalize();

  /// Deserialization path (the `.ppdb` sidecar persists the graph so a
  /// warm open never scans record streams): install one process's
  /// pre-extracted node and edge rows verbatim, then finalize() once.
  /// Rows carry only what addProcess reads from sync records — Clock and
  /// the seq lookup are recomputed by finalize(). Edge i must end at
  /// node i+1, the invariant addProcess establishes.
  void adoptProcess(uint32_t Pid, std::vector<SyncNode> ProcNodes,
                    std::vector<InternalEdge> ProcEdges);

  /// Streamed-ingest construction: extends process \p Pid with the sync
  /// records in \p PL starting at record \p FromRecord, then
  /// finalizeTail() closes the clocks of everything appended since the
  /// last finalize. \p Pid == numProcs() grows the graph by one process.
  /// Valid whenever every appended node's Seq exceeds every
  /// already-finalized Seq and partners of appended nodes are either
  /// already finalized or appended in the same round (the consistent-cut
  /// invariant the ingest session enforces); the finished graph is then
  /// identical to a batch build over the same records.
  void appendProcess(uint32_t Pid, const ProcessLog &PL,
                     uint32_t FromRecord);
  void finalizeTail();

  /// True when a finalized node with global sequence number \p Seq
  /// exists — the ingest session's partner-validation primitive.
  bool hasSeq(uint64_t Seq) const {
    return Seq < BySeq.size() && BySeq[Seq].valid();
  }

  unsigned numProcs() const { return unsigned(Nodes.size()); }
  const std::vector<SyncNode> &nodes(uint32_t Pid) const {
    return Nodes[Pid];
  }
  const SyncNode &node(SyncNodeRef Ref) const {
    return Nodes[Ref.Pid][Ref.Index];
  }
  const std::vector<InternalEdge> &edges(uint32_t Pid) const {
    return Edges[Pid];
  }
  const InternalEdge &edge(EdgeRef Ref) const {
    return Edges[Ref.Pid][Ref.EndNode - 1];
  }
  /// All internal edges of all processes.
  std::vector<EdgeRef> allEdges() const;

  /// Synchronization-edge source of \p Ref (the partner node), if any.
  SyncNodeRef partnerOf(SyncNodeRef Ref) const;

  /// Happens-before over nodes (Lamport ordering; reflexive-false).
  bool happensBefore(SyncNodeRef A, SyncNodeRef B) const;

  /// Edge ordering, Def §6.1: e1 → e2 iff end(e1) → start(e2). start(e) is
  /// the node preceding the edge, end(e) its EndNode.
  bool edgeHappensBefore(EdgeRef A, EdgeRef B) const;

  /// Def 6.1: neither e1 → e2 nor e2 → e1.
  bool simultaneous(EdgeRef A, EdgeRef B) const;

  /// The internal edge of process \p Pid whose record span contains log
  /// record \p RecordIdx; invalid if the position precedes the first sync
  /// node (cannot happen: ProcStart is record 0) or the process has no
  /// edge there yet.
  EdgeRef edgeContaining(uint32_t Pid, uint32_t RecordIdx) const;

  /// The latest internal edge (in the happens-before order) that writes
  /// shared variable \p SharedIdx and happens-before \p Reader. Sets
  /// \p RaceWitness when a writing edge *simultaneous* with Reader exists
  /// (the §6.3 situation where "we cannot tell which happened first").
  /// Skips Reader itself and other edges of Reader's process that don't
  /// precede it.
  EdgeRef lastWriterBefore(EdgeRef Reader, uint32_t SharedIdx,
                           EdgeRef *RaceWitness = nullptr) const;

  /// Every internal edge that writes \p SharedIdx and happens-before
  /// \p Reader, latest first (descending end-node Seq — a linear
  /// extension of happens-before). WRITE_SETs are variable-granular, so
  /// for array variables a caller attributing an element read may need to
  /// fall back past the latest writer to an earlier one that wrote the
  /// element in question. RaceWitness as in lastWriterBefore.
  std::vector<EdgeRef> writersBefore(EdgeRef Reader, uint32_t SharedIdx,
                                     EdgeRef *RaceWitness = nullptr) const;

  /// Graphviz rendering in the style of Fig 6.1: one column per process,
  /// synchronization edges across.
  std::string dot(const Program &P) const;

private:
  std::vector<std::vector<SyncNode>> Nodes;     ///< per pid.
  std::vector<std::vector<InternalEdge>> Edges; ///< per pid; edge i ends
                                                ///< at node i+1.
  /// Seq → node lookup.
  std::vector<SyncNodeRef> BySeq;
  unsigned NumShared;
  /// First BySeq slot not yet clock-finalized; finalizeTail() resumes
  /// here. Every batch finalize() leaves it at BySeq.size().
  uint64_t FinalizeWatermark = 0;
};

} // namespace ppd

#endif // PPD_PARDYN_PARALLELDYNAMICGRAPH_H
