//===- pardyn/EdgeClosure.cpp ---------------------------------------------===//
//
// Part of PPD. See EdgeClosure.h.
//
//===----------------------------------------------------------------------===//

#include "pardyn/EdgeClosure.h"

#include <chrono>

using namespace ppd;

EdgeClosure::EdgeClosure(const ParallelDynamicGraph &Graph,
                         size_t MaxRowBytes) {
  auto Start = std::chrono::steady_clock::now();

  const uint32_t P = Graph.numProcs();
  Base.resize(P);
  for (uint32_t Pid = 0; Pid != P; ++Pid) {
    Base[Pid] = NumEdges;
    NumEdges += uint32_t(Graph.edges(Pid).size());
  }
  PidOf.resize(NumEdges);
  for (uint32_t Pid = 0; Pid != P; ++Pid)
    for (uint32_t I = 0; I != Graph.edges(Pid).size(); ++I)
      PidOf[Base[Pid] + I] = Pid;

  Bounds.assign(size_t(NumEdges) * P, Interval{});

  // E² bits of rows; skip materialization past the cap (Bounds still
  // answer every query).
  size_t RowBytesNeeded = (size_t(NumEdges) * NumEdges + 7) / 8;
  bool WantRows = NumEdges != 0 && RowBytesNeeded <= MaxRowBytes;
  if (WantRows)
    Rows = VarSetArena(NumEdges, NumEdges);

  // For edge B of process q ending at node e (start node s = e-1), and
  // another process p with n_p edges (1-based end nodes k):
  //   A(p,k) -> B  iff  Clock[start(B)][p] >= k+1      (a prefix of k)
  //   B -> A(p,k)  iff  Clock[node(p,k-1)][q] >= e+1   (a suffix of k)
  // Simultaneous edges of p are the interval in between. The prefix
  // length is read straight off start(B)'s clock; the suffix start is a
  // binary search over p's (monotone) clock column for q.
  for (uint32_t Q = 0; Q != P; ++Q) {
    const std::vector<SyncNode> &QNodes = Graph.nodes(Q);
    const uint32_t NQ = uint32_t(Graph.edges(Q).size());
    for (uint32_t E = 1; E <= NQ; ++E) {
      const uint32_t Gid = Base[Q] + E - 1;
      const SyncNode &StartB = QNodes[E - 1];
      for (uint32_t Pp = 0; Pp != P; ++Pp) {
        if (Pp == Q)
          continue; // same process: always ordered (Def 6.1)
        const uint32_t NP = uint32_t(Graph.edges(Pp).size());
        if (NP == 0)
          continue;
        // Edges of Pp ordered before B: k <= Clock[start(B)][Pp] - 1.
        uint32_t ClockP = StartB.Clock[Pp];
        uint32_t PrefixLen = ClockP ? std::min(NP, ClockP - 1) : 0;
        // First k with node(Pp, k-1).Clock[Q] >= E + 1 — everything from
        // there on is ordered after B. Binary search over j = k-1.
        const std::vector<SyncNode> &PNodes = Graph.nodes(Pp);
        uint32_t LoJ = 0, HiJ = NP; // search j in [0, NP)
        while (LoJ != HiJ) {
          uint32_t Mid = LoJ + (HiJ - LoJ) / 2;
          if (PNodes[Mid].Clock[Q] >= E + 1)
            HiJ = Mid;
          else
            LoJ = Mid + 1;
        }
        uint32_t SuffixStartK = LoJ + 1; // k = j + 1
        // Simultaneous: k in (PrefixLen, SuffixStartK).
        Interval &Iv = Bounds[size_t(Gid) * P + Pp];
        if (SuffixStartK > PrefixLen + 1) {
          Iv.Lo = Base[Pp] + PrefixLen;          // k = PrefixLen + 1
          Iv.Hi = Base[Pp] + (SuffixStartK - 1); // k = SuffixStartK - 1
          if (WantRows)
            Rows.row(Gid).insertRange(Iv.Lo, Iv.Hi - 1);
        } else {
          Iv.Lo = Iv.Hi = Base[Pp];
        }
      }
    }
  }

  BuildNanos = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - Start)
                            .count());
}
