//===- pardyn/RaceDetector.cpp --------------------------------------------===//
//
// Part of PPD. See RaceDetector.h.
//
//===----------------------------------------------------------------------===//

#include "pardyn/RaceDetector.h"

#include "lang/AstPrinter.h"
#include "pardyn/EdgeClosure.h"
#include "support/FixedVarSet.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_set>

using namespace ppd;

const char *ppd::raceAlgorithmName(RaceAlgorithm Algorithm) {
  switch (Algorithm) {
  case RaceAlgorithm::NaiveAllPairs:
    return "naive";
  case RaceAlgorithm::VarIndexed:
    return "indexed";
  case RaceAlgorithm::Vectorized:
    return "vectorized";
  }
  return "unknown";
}

bool ppd::parseRaceAlgorithm(const std::string &Name, RaceAlgorithm &Out) {
  if (Name == "naive")
    Out = RaceAlgorithm::NaiveAllPairs;
  else if (Name == "indexed")
    Out = RaceAlgorithm::VarIndexed;
  else if (Name == "vectorized")
    Out = RaceAlgorithm::Vectorized;
  else
    return false;
  return true;
}

RaceDetector::RaceDetector(const ParallelDynamicGraph &Graph,
                           const SymbolTable &Symbols)
    : Graph(Graph), Symbols(Symbols) {
  SharedToVar.assign(Symbols.NumSharedVars, InvalidId);
  for (const VarInfo &Info : Symbols.Vars)
    if (Info.SharedIndex != InvalidId)
      SharedToVar[Info.SharedIndex] = Info.Id;
  ScratchWW.reserveFor(Symbols.NumSharedVars);
  ScratchRW.reserveFor(Symbols.NumSharedVars);
  ScratchWR.reserveFor(Symbols.NumSharedVars);
}

Race RaceDetector::makeRace(EdgeRef A, EdgeRef B, uint32_t SharedIdx,
                            RaceKind Kind) const {
  // Canonical order so both algorithms produce identical race lists.
  if (B.Pid < A.Pid || (B.Pid == A.Pid && B.EndNode < A.EndNode))
    std::swap(A, B);
  Race R;
  R.SharedIdx = SharedIdx;
  R.Var = SharedToVar[SharedIdx];
  R.First = A;
  R.Second = B;
  R.Kind = Kind;
  return R;
}

void RaceDetector::classifyPair(EdgeRef A, EdgeRef B,
                                std::vector<Race> &Out) const {
  const InternalEdge &EA = Graph.edge(A);
  const InternalEdge &EB = Graph.edge(B);

  // Fused pretest: most simultaneous pairs don't conflict at all; one
  // early-exit pass over (W_A ∪ R_A) ∩ ... words rejects them before the
  // three classifying intersections below.
  if (!EA.Writes.intersectsAny(EB.Writes, EB.Reads) &&
      !EB.Writes.intersects(EA.Reads))
    return;

  // Def 6.3: write/write and read/write conflicts per shared variable.
  // The scratch members are sized to the shared universe once, so these
  // assignments reuse capacity instead of allocating three sets per pair.
  BitVarSet &WW = ScratchWW;
  WW.assignIntersection(EA.Writes, EB.Writes);
  WW.forEach([&](unsigned S) {
    Out.push_back(makeRace(A, B, S, RaceKind::WriteWrite));
  });

  BitVarSet &RW = ScratchRW;
  RW.assignIntersection(EA.Reads, EB.Writes);
  RW.forEach([&](unsigned S) {
    if (!WW.contains(S))
      Out.push_back(makeRace(A, B, S, RaceKind::ReadWrite));
  });

  BitVarSet &WR = ScratchWR;
  WR.assignIntersection(EA.Writes, EB.Reads);
  WR.forEach([&](unsigned S) {
    if (!WW.contains(S) && !RW.contains(S))
      Out.push_back(makeRace(A, B, S, RaceKind::ReadWrite));
  });
}

void RaceDetector::canonicalize(RaceDetectionResult &Result) {
  // Canonical result order, independent of discovery order — this is what
  // makes the three algorithms' race lists byte-comparable.
  std::sort(Result.Races.begin(), Result.Races.end(),
            [](const Race &A, const Race &B) {
              auto KeyOf = [](const Race &R) {
                return std::make_tuple(R.SharedIdx, R.First.Pid,
                                       R.First.EndNode, R.Second.Pid,
                                       R.Second.EndNode, uint8_t(R.Kind));
              };
              return KeyOf(A) < KeyOf(B);
            });
  Result.Races.erase(std::unique(Result.Races.begin(), Result.Races.end()),
                     Result.Races.end());
}

RaceDetectionResult RaceDetector::detect(RaceAlgorithm Algorithm,
                                         ThreadPool *Pool) const {
  if (Algorithm == RaceAlgorithm::Vectorized)
    return detectVectorized(Pool);

  RaceDetectionResult Result;
  std::vector<EdgeRef> All = Graph.allEdges();

  if (Algorithm == RaceAlgorithm::NaiveAllPairs) {
    for (size_t I = 0; I != All.size(); ++I) {
      for (size_t J = I + 1; J != All.size(); ++J) {
        if (All[I].Pid == All[J].Pid)
          continue;
        ++Result.PairsExamined;
        if (!Graph.simultaneous(All[I], All[J]))
          continue;
        classifyPair(All[I], All[J], Result.Races);
      }
    }
  } else {
    // VarIndexed: bucket edges by the shared variables they access; only
    // pairs sharing a variable with a potential conflict are ordered.
    std::vector<std::vector<EdgeRef>> ReadersOf(SharedToVar.size());
    std::vector<std::vector<EdgeRef>> WritersOf(SharedToVar.size());
    for (const EdgeRef &E : All) {
      const InternalEdge &Edge = Graph.edge(E);
      Edge.Reads.forEach([&](unsigned S) { ReadersOf[S].push_back(E); });
      Edge.Writes.forEach([&](unsigned S) { WritersOf[S].push_back(E); });
    }

    // A pair may conflict on several variables; examine it once. Edges
    // pack into 32 bits (pid in the high byte), pairs into 64 — a hashed
    // set keeps the dedup off the critical path.
    std::unordered_set<uint64_t> Seen;
    Seen.reserve(All.size() * 4);
    auto Pack = [](EdgeRef E) {
      return (uint64_t(E.Pid) << 24) | E.EndNode;
    };
    auto Key = [&](EdgeRef A, EdgeRef B) {
      uint64_t KA = Pack(A), KB = Pack(B);
      return KA < KB ? (KA << 32) | KB : (KB << 32) | KA;
    };

    for (uint32_t S = 0; S != SharedToVar.size(); ++S) {
      auto Examine = [&](EdgeRef A, EdgeRef B) {
        if (A.Pid == B.Pid)
          return;
        if (!Seen.insert(Key(A, B)).second)
          return;
        ++Result.PairsExamined;
        if (!Graph.simultaneous(A, B))
          return;
        classifyPair(A, B, Result.Races);
      };
      for (size_t I = 0; I != WritersOf[S].size(); ++I)
        for (size_t J = I + 1; J != WritersOf[S].size(); ++J)
          Examine(WritersOf[S][I], WritersOf[S][J]);
      for (const EdgeRef &W : WritersOf[S])
        for (const EdgeRef &R : ReadersOf[S])
          Examine(W, R);
    }
  }

  canonicalize(Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Vectorized tier: batched closure + inverted index + SIMD sweep.
//===----------------------------------------------------------------------===//

namespace {

/// One shard of the per-variable sweep; shards own their scratch and race
/// output so workers never share mutable state.
struct SweepShard {
  std::vector<Race> Races;
  uint64_t Pairs = 0;
};

} // namespace

RaceDetectionResult RaceDetector::detectVectorized(ThreadPool *Pool) const {
  RaceDetectionResult Result;
  const uint32_t NumShared = uint32_t(SharedToVar.size());

  // Layer 2: the batched happens-before closure — simultaneity becomes a
  // bit test (or two compares on row-less giant traces).
  EdgeClosure Closure(Graph);
  Result.ClosureBuildNs = Closure.buildNanos();
  const uint32_t E = Closure.numEdges();
  if (E == 0 || NumShared == 0)
    return Result;

  // Layer 1: all per-edge READ/WRITE sets in one flat, universe-width
  // arena (row 2g = reads of edge g, row 2g+1 = writes), memcpy'd from
  // the graph's BitVarSets — the sweep below never touches a
  // grow-on-demand set again.
  VarSetArena Sets(E * 2, NumShared);
  const uint32_t SetWords = Sets.wordsPerRow();
  // Inverted index: shared var → writer edges / reader-only edges, in
  // ascending global-id order (the construction below guarantees it).
  std::vector<std::vector<uint32_t>> WritersOf(NumShared);
  std::vector<std::vector<uint32_t>> ReadersOf(NumShared);
  for (uint32_t Gid = 0; Gid != E; ++Gid) {
    const InternalEdge &Edge = Graph.edge(Closure.edgeOf(Gid));
    FixedVarSet R = Sets.row(2 * Gid);
    FixedVarSet W = Sets.row(2 * Gid + 1);
    if (size_t N = std::min<size_t>(Edge.Reads.numWords(), SetWords))
      std::memcpy(R.words(), Edge.Reads.wordsData(), N * sizeof(uint64_t));
    if (size_t N = std::min<size_t>(Edge.Writes.numWords(), SetWords))
      std::memcpy(W.words(), Edge.Writes.wordsData(), N * sizeof(uint64_t));
    W.forEach([&](unsigned S) { WritersOf[S].push_back(Gid); });
    // Readers that also write S classify as write/write there; keeping
    // them out of the reader list is what makes the sweep emit each
    // conflict exactly once with the same kind the legacy classifier
    // picks.
    R.forEach([&](unsigned S) {
      if (!W.contains(S))
        ReadersOf[S].push_back(Gid);
    });
  }

  // Layer 3: the sweep, shardable by variable. Each shard enumerates
  // candidate pairs for its variables via row ∧ mask (rows present) or a
  // bounds-tested pairwise loop (giant traces).
  auto sweepVar = [&](uint32_t S, SweepShard &Out, FixedVarSet Mask,
                      FixedVarSet Cand) {
    const std::vector<uint32_t> &Ws = WritersOf[S];
    if (Ws.empty())
      return;
    const std::vector<uint32_t> &Rs = ReadersOf[S];
    Out.Pairs += uint64_t(Ws.size()) * (Ws.size() - 1) / 2 +
                 uint64_t(Ws.size()) * Rs.size();
    if (!Closure.hasRows()) {
      for (size_t I = 0; I != Ws.size(); ++I)
        for (size_t J = I + 1; J != Ws.size(); ++J)
          if (Closure.simultaneous(Ws[I], Ws[J]))
            Out.Races.push_back(makeRace(Closure.edgeOf(Ws[I]),
                                         Closure.edgeOf(Ws[J]), S,
                                         RaceKind::WriteWrite));
      for (uint32_t W : Ws)
        for (uint32_t R : Rs)
          if (Closure.simultaneous(W, R))
            Out.Races.push_back(makeRace(Closure.edgeOf(W),
                                         Closure.edgeOf(R), S,
                                         RaceKind::ReadWrite));
      return;
    }
    // Write/write: partners above the current writer only, so each
    // unordered pair surfaces exactly once.
    if (Ws.size() > 1) {
      Mask.clear();
      for (uint32_t G : Ws)
        Mask.insert(G);
      for (size_t I = 0; I + 1 != Ws.size(); ++I) {
        uint32_t A = Ws[I];
        Cand.assignIntersection(Closure.simultaneousRow(A), Mask);
        Cand.forEachFrom(A + 1, [&](unsigned B) {
          Out.Races.push_back(makeRace(Closure.edgeOf(A),
                                       Closure.edgeOf(B), S,
                                       RaceKind::WriteWrite));
        });
      }
    }
    // Read/write: reader side never writes S, so (writer, reader) pairs
    // are unique without ordering tricks.
    if (!Rs.empty()) {
      Mask.clear();
      for (uint32_t G : Rs)
        Mask.insert(G);
      for (uint32_t A : Ws) {
        Cand.assignIntersection(Closure.simultaneousRow(A), Mask);
        Cand.forEach([&](unsigned B) {
          Out.Races.push_back(makeRace(Closure.edgeOf(A),
                                       Closure.edgeOf(B), S,
                                       RaceKind::ReadWrite));
        });
      }
    }
  };

  auto sweepShard = [&](uint32_t First, uint32_t Stride, SweepShard &Out) {
    // Per-worker scratch: a candidate row and a mask row over the edge
    // universe, reused across this shard's variables.
    VarSetArena Scratch(2, E);
    for (uint32_t S = First; S < NumShared; S += Stride)
      sweepVar(S, Out, Scratch.row(0), Scratch.row(1));
  };

  unsigned Workers = Pool ? Pool->numThreads() : 0;
  uint32_t NumShards =
      Workers ? std::min(NumShared, uint32_t(Workers) * 4) : 1;
  std::vector<SweepShard> Shards(NumShards);
  if (NumShards == 1) {
    sweepShard(0, 1, Shards[0]);
  } else {
    // Fan the shards out and help drain the pool; the merge below runs in
    // shard order, and canonicalize() makes the final list independent of
    // scheduling anyway.
    struct WaitState {
      std::mutex Mutex;
      std::condition_variable Cv;
      uint32_t Remaining;
    } Wait;
    Wait.Remaining = NumShards;
    for (uint32_t I = 0; I != NumShards; ++I)
      Pool->submit([&, I] {
        sweepShard(I, NumShards, Shards[I]);
        std::lock_guard<std::mutex> Lock(Wait.Mutex);
        if (--Wait.Remaining == 0)
          Wait.Cv.notify_all();
      });
    while (Pool->runOneTask())
      ;
    std::unique_lock<std::mutex> Lock(Wait.Mutex);
    Wait.Cv.wait(Lock, [&] { return Wait.Remaining == 0; });
  }

  for (SweepShard &Shard : Shards) {
    Result.PairsExamined += Shard.Pairs;
    Result.Races.insert(Result.Races.end(), Shard.Races.begin(),
                        Shard.Races.end());
  }
  canonicalize(Result);
  return Result;
}

std::string RaceDetector::describe(const Race &R, const Program &P) const {
  std::string Out = R.Kind == RaceKind::WriteWrite ? "write/write"
                                                   : "read/write";
  Out += " race on shared variable '";
  Out += Symbols.var(R.Var).Name;
  Out += "' between process " + std::to_string(R.First.Pid);
  const SyncNode &N1 = Graph.node({R.First.Pid, R.First.EndNode});
  if (N1.Stmt != InvalidId)
    Out += " (edge ending at " + AstPrinter::summarize(*P.stmt(N1.Stmt)) +
           ")";
  Out += " and process " + std::to_string(R.Second.Pid);
  const SyncNode &N2 = Graph.node({R.Second.Pid, R.Second.EndNode});
  if (N2.Stmt != InvalidId)
    Out += " (edge ending at " + AstPrinter::summarize(*P.stmt(N2.Stmt)) +
           ")";
  return Out;
}

std::string RaceDetector::summarize(const RaceDetectionResult &Result,
                                    const Program &P) const {
  if (Result.raceFree())
    return "race-free execution instance (Def 6.4)\n";

  // Group by (variable, kind, the statements ending the two edges): the
  // many per-iteration edges of a loop collapse into one line.
  std::map<std::tuple<VarId, uint8_t, StmtId, StmtId>, unsigned> Groups;
  for (const Race &R : Result.Races) {
    StmtId S1 = Graph.node({R.First.Pid, R.First.EndNode}).Stmt;
    StmtId S2 = Graph.node({R.Second.Pid, R.Second.EndNode}).Stmt;
    if (S2 < S1)
      std::swap(S1, S2);
    ++Groups[{R.Var, uint8_t(R.Kind), S1, S2}];
  }

  std::string Out;
  for (const auto &[Key, Count] : Groups) {
    const auto &[Var, Kind, S1, S2] = Key;
    Out += RaceKind(Kind) == RaceKind::WriteWrite ? "write/write"
                                                  : "read/write";
    Out += " race on shared variable '" + Symbols.var(Var).Name + "'";
    if (S1 != InvalidId)
      Out += " near " + AstPrinter::summarize(*P.stmt(S1));
    if (S2 != InvalidId && S2 != S1)
      Out += " / " + AstPrinter::summarize(*P.stmt(S2));
    Out += "  (x" + std::to_string(Count) + ")\n";
  }
  return Out;
}
