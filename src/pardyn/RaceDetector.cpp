//===- pardyn/RaceDetector.cpp --------------------------------------------===//
//
// Part of PPD. See RaceDetector.h.
//
//===----------------------------------------------------------------------===//

#include "pardyn/RaceDetector.h"

#include "lang/AstPrinter.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace ppd;

RaceDetector::RaceDetector(const ParallelDynamicGraph &Graph,
                           const SymbolTable &Symbols)
    : Graph(Graph), Symbols(Symbols) {
  SharedToVar.assign(Symbols.NumSharedVars, InvalidId);
  for (const VarInfo &Info : Symbols.Vars)
    if (Info.SharedIndex != InvalidId)
      SharedToVar[Info.SharedIndex] = Info.Id;
}

Race RaceDetector::makeRace(EdgeRef A, EdgeRef B, uint32_t SharedIdx,
                            RaceKind Kind) const {
  // Canonical order so both algorithms produce identical race lists.
  if (B.Pid < A.Pid || (B.Pid == A.Pid && B.EndNode < A.EndNode))
    std::swap(A, B);
  Race R;
  R.SharedIdx = SharedIdx;
  R.Var = SharedToVar[SharedIdx];
  R.First = A;
  R.Second = B;
  R.Kind = Kind;
  return R;
}

void RaceDetector::classifyPair(EdgeRef A, EdgeRef B,
                                std::vector<Race> &Out) const {
  const InternalEdge &EA = Graph.edge(A);
  const InternalEdge &EB = Graph.edge(B);

  // Def 6.3: write/write and read/write conflicts per shared variable.
  BitVarSet WW = EA.Writes;
  WW.intersectWith(EB.Writes);
  WW.forEach([&](unsigned S) {
    Out.push_back(makeRace(A, B, S, RaceKind::WriteWrite));
  });

  BitVarSet RW = EA.Reads;
  RW.intersectWith(EB.Writes);
  RW.forEach([&](unsigned S) {
    if (!WW.contains(S))
      Out.push_back(makeRace(A, B, S, RaceKind::ReadWrite));
  });

  BitVarSet WR = EA.Writes;
  WR.intersectWith(EB.Reads);
  WR.forEach([&](unsigned S) {
    if (!WW.contains(S) && !RW.contains(S))
      Out.push_back(makeRace(A, B, S, RaceKind::ReadWrite));
  });
}

RaceDetectionResult RaceDetector::detect(RaceAlgorithm Algorithm) const {
  RaceDetectionResult Result;
  std::vector<EdgeRef> All = Graph.allEdges();

  if (Algorithm == RaceAlgorithm::NaiveAllPairs) {
    for (size_t I = 0; I != All.size(); ++I) {
      for (size_t J = I + 1; J != All.size(); ++J) {
        if (All[I].Pid == All[J].Pid)
          continue;
        ++Result.PairsExamined;
        if (!Graph.simultaneous(All[I], All[J]))
          continue;
        classifyPair(All[I], All[J], Result.Races);
      }
    }
  } else {
    // VarIndexed: bucket edges by the shared variables they access; only
    // pairs sharing a variable with a potential conflict are ordered.
    std::vector<std::vector<EdgeRef>> ReadersOf(SharedToVar.size());
    std::vector<std::vector<EdgeRef>> WritersOf(SharedToVar.size());
    for (const EdgeRef &E : All) {
      const InternalEdge &Edge = Graph.edge(E);
      Edge.Reads.forEach([&](unsigned S) { ReadersOf[S].push_back(E); });
      Edge.Writes.forEach([&](unsigned S) { WritersOf[S].push_back(E); });
    }

    // A pair may conflict on several variables; examine it once. Edges
    // pack into 32 bits (pid in the high byte), pairs into 64 — a hashed
    // set keeps the dedup off the critical path.
    std::unordered_set<uint64_t> Seen;
    Seen.reserve(All.size() * 4);
    auto Pack = [](EdgeRef E) {
      return (uint64_t(E.Pid) << 24) | E.EndNode;
    };
    auto Key = [&](EdgeRef A, EdgeRef B) {
      uint64_t KA = Pack(A), KB = Pack(B);
      return KA < KB ? (KA << 32) | KB : (KB << 32) | KA;
    };

    for (uint32_t S = 0; S != SharedToVar.size(); ++S) {
      auto Examine = [&](EdgeRef A, EdgeRef B) {
        if (A.Pid == B.Pid)
          return;
        if (!Seen.insert(Key(A, B)).second)
          return;
        ++Result.PairsExamined;
        if (!Graph.simultaneous(A, B))
          return;
        classifyPair(A, B, Result.Races);
      };
      for (size_t I = 0; I != WritersOf[S].size(); ++I)
        for (size_t J = I + 1; J != WritersOf[S].size(); ++J)
          Examine(WritersOf[S][I], WritersOf[S][J]);
      for (const EdgeRef &W : WritersOf[S])
        for (const EdgeRef &R : ReadersOf[S])
          Examine(W, R);
    }
  }

  // Canonical result order, independent of discovery order.
  std::sort(Result.Races.begin(), Result.Races.end(),
            [](const Race &A, const Race &B) {
              auto KeyOf = [](const Race &R) {
                return std::make_tuple(R.SharedIdx, R.First.Pid,
                                       R.First.EndNode, R.Second.Pid,
                                       R.Second.EndNode, uint8_t(R.Kind));
              };
              return KeyOf(A) < KeyOf(B);
            });
  Result.Races.erase(std::unique(Result.Races.begin(), Result.Races.end()),
                     Result.Races.end());
  return Result;
}

std::string RaceDetector::describe(const Race &R, const Program &P) const {
  std::string Out = R.Kind == RaceKind::WriteWrite ? "write/write"
                                                   : "read/write";
  Out += " race on shared variable '";
  Out += Symbols.var(R.Var).Name;
  Out += "' between process " + std::to_string(R.First.Pid);
  const SyncNode &N1 = Graph.node({R.First.Pid, R.First.EndNode});
  if (N1.Stmt != InvalidId)
    Out += " (edge ending at " + AstPrinter::summarize(*P.stmt(N1.Stmt)) +
           ")";
  Out += " and process " + std::to_string(R.Second.Pid);
  const SyncNode &N2 = Graph.node({R.Second.Pid, R.Second.EndNode});
  if (N2.Stmt != InvalidId)
    Out += " (edge ending at " + AstPrinter::summarize(*P.stmt(N2.Stmt)) +
           ")";
  return Out;
}

std::string RaceDetector::summarize(const RaceDetectionResult &Result,
                                    const Program &P) const {
  if (Result.raceFree())
    return "race-free execution instance (Def 6.4)\n";

  // Group by (variable, kind, the statements ending the two edges): the
  // many per-iteration edges of a loop collapse into one line.
  std::map<std::tuple<VarId, uint8_t, StmtId, StmtId>, unsigned> Groups;
  for (const Race &R : Result.Races) {
    StmtId S1 = Graph.node({R.First.Pid, R.First.EndNode}).Stmt;
    StmtId S2 = Graph.node({R.Second.Pid, R.Second.EndNode}).Stmt;
    if (S2 < S1)
      std::swap(S1, S2);
    ++Groups[{R.Var, uint8_t(R.Kind), S1, S2}];
  }

  std::string Out;
  for (const auto &[Key, Count] : Groups) {
    const auto &[Var, Kind, S1, S2] = Key;
    Out += RaceKind(Kind) == RaceKind::WriteWrite ? "write/write"
                                                  : "read/write";
    Out += " race on shared variable '" + Symbols.var(Var).Name + "'";
    if (S1 != InvalidId)
      Out += " near " + AstPrinter::summarize(*P.stmt(S1));
    if (S2 != InvalidId && S2 != S1)
      Out += " / " + AstPrinter::summarize(*P.stmt(S2));
    Out += "  (x" + std::to_string(Count) + ")\n";
  }
  return Out;
}
