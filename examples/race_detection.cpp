//===- examples/race_detection.cpp - §6.4 race detection demo -------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// The paper's §6 scenario: co-operating processes updating a shared bank
// account. Run the unsynchronized version — PPD flags the write/write
// races from the execution log alone — then the semaphore-protected
// version, whose execution instances are certified race-free (Def 6.4),
// which is exactly what validates the logs for replay (§5.5).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Racy = R"(
shared int balance;
chan done;
func deposit(int times, int amount) {
  int i = 0;
  for (i = 0; i < times; i = i + 1)
    balance = balance + amount;   // unprotected read-modify-write
  send(done, 1);
}
func main() {
  spawn deposit(20, 5);
  spawn deposit(20, 3);
  int a = recv(done);
  int b = recv(done);
  print(balance);
}
)";

const char *Synchronized = R"(
shared int balance;
sem lock = 1;
chan done;
func deposit(int times, int amount) {
  int i = 0;
  for (i = 0; i < times; i = i + 1) {
    P(lock);
    balance = balance + amount;
    V(lock);
  }
  send(done, 1);
}
func main() {
  spawn deposit(20, 5);
  spawn deposit(20, 3);
  int a = recv(done);
  int b = recv(done);
  print(balance);
}
)";

void analyze(const char *Name, const char *Source, uint64_t Seed) {
  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return;
  }
  MachineOptions MOpts;
  MOpts.Seed = Seed;
  MOpts.Quantum = 3; // aggressive preemption makes interleavings visible
  Machine M(*Prog, MOpts);
  M.run();
  int64_t Balance = M.output().empty() ? -1 : M.output().back().Value;

  PpdController Controller(*Prog, M.takeLog());
  auto Naive = Controller.detectRaces(RaceAlgorithm::NaiveAllPairs);
  auto Indexed = Controller.detectRaces(RaceAlgorithm::VarIndexed);

  std::printf("%-14s seed %-4llu balance %-4lld  races %-3zu  "
              "pairs: naive %llu vs indexed %llu\n",
              Name, (unsigned long long)Seed, (long long)Balance,
              Naive.Races.size(), (unsigned long long)Naive.PairsExamined,
              (unsigned long long)Indexed.PairsExamined);

  if (!Naive.Races.empty()) {
    RaceDetector Detector(Controller.parallelGraph(), *Prog->Symbols);
    std::printf("    first race: %s\n",
                Detector.describe(Naive.Races.front(), *Prog->Ast).c_str());
  }
}

} // namespace

int main() {
  std::printf("== PPD race detection (paper §6.3/§6.4) ==\n\n");
  std::printf("the correct sum is 20*5 + 20*3 = 160; racy schedules may "
              "lose updates\n\n");
  for (uint64_t Seed : {1, 7, 42})
    analyze("unprotected", Racy, Seed);
  std::printf("\n");
  for (uint64_t Seed : {1, 7, 42})
    analyze("with mutex", Synchronized, Seed);
  std::printf("\nNote: PPD detects the race *potential* from the execution "
              "instance's\nparallel dynamic graph even when the schedule "
              "happened to produce 160 —\nthe paper's point that one cannot "
              "tell which of two simultaneous edges\nran first.\n");
  return 0;
}
