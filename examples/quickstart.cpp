//===- examples/quickstart.cpp - PPD in five minutes ----------------------===//
//
// Part of PPD, a reproduction of Miller & Choi, "A Mechanism for Efficient
// Debugging of Parallel Programs" (PLDI 1988).
//
// The paper's Fig 4.1 walkthrough: compile a program, run it with logging
// (the execution phase), then — without re-executing the program — ask the
// PPD controller to explain where the printed value came from (flowback
// analysis, regenerating traces incrementally from the log).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

/// Fig 4.1's fragment, completed into a runnable program. The dynamic
/// graph of interest hangs off statement s6 (`a = a + sq`).
const char *Source = R"(
func SubD(int p1, int p2, int p3) {
  return p1 * p2 - p3;
}
func main() {
  int a = 2;
  int b = 3;
  int c = 17;
  int d = SubD(a, b, a + b + c);   // s1 in the paper's figure
  int sq = 0;
  if (d > 0)                        // s3
    sq = sqrt(d);                   // s4
  else
    sq = sqrt(-d);                  // s5
  a = a + sq;                       // s6
  print(a);
}
)";

void flowbackWalk(PpdController &Controller, DynNodeId Start,
                  unsigned MaxSteps) {
  DynNodeId Node = Start;
  for (unsigned Step = 0; Step != MaxSteps && Node != InvalidId; ++Step) {
    const DynNode &N = Controller.graph().node(Node);
    std::printf("  [%u] %s", Step, N.Label.c_str());
    if (N.HasValue)
      std::printf("   (value %lld)", (long long)N.Value);
    std::printf("\n");

    // Show all incoming dependences, then follow the first data edge.
    DynNodeId Next = InvalidId;
    for (const DynEdge &E : Controller.dependencesOf(Node)) {
      const DynNode &From = Controller.graph().node(E.From);
      const char *Kind = E.Kind == DynEdgeKind::Control ? "control"
                         : E.Kind == DynEdgeKind::CrossData
                             ? "cross-process data"
                             : E.Kind == DynEdgeKind::Data ? "data" : nullptr;
      if (!Kind)
        continue;
      std::printf("        <- %s dep on %s\n", Kind, From.Label.c_str());
      if (Next == InvalidId &&
          (E.Kind == DynEdgeKind::Data || E.Kind == DynEdgeKind::CrossData) &&
          From.Kind != DynNodeKind::Entry)
        Next = E.From;
    }
    Node = Next;
  }
}

} // namespace

int main() {
  std::printf("== PPD quickstart: the paper's Fig 4.1 walkthrough ==\n\n");

  // Preparatory phase: the Compiler/Linker emits object code, emulation
  // package, static graphs, and the program database (paper Fig 3.1).
  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("compiled: %zu functions, %zu e-blocks, %zu sync units\n",
              Prog->Funcs.size(), Prog->EBlocks.size(), Prog->Units.size());

  // Execution phase: the object code runs and generates the log.
  Machine M(*Prog, MachineOptions());
  RunResult Result = M.run();
  std::printf("execution: %llu VM steps, output:",
              (unsigned long long)Result.Steps);
  for (const OutputRecord &O : M.output())
    std::printf(" %lld", (long long)O.Value);
  std::printf("\nlog volume: %zu bytes\n\n", M.log().byteSize());

  // Debugging phase: flowback analysis from the last event — no program
  // re-execution, only incremental replay of log intervals.
  PpdController Controller(*Prog, M.takeLog());
  DynNodeId Last = Controller.startAtLastEvent(0);
  std::printf("flowback from the final print:\n");
  flowbackWalk(Controller, Last, 8);

  // Expand the SubD call's sub-graph node (Fig 4.1's detail view).
  for (uint32_t Id = 0; Id != Controller.graph().numNodes(); ++Id) {
    const DynNode &N = Controller.graph().node(Id);
    if (N.Kind == DynNodeKind::SubGraph && !N.Expanded) {
      std::printf("\nexpanding sub-graph node '%s' (replays the nested log "
                  "interval)\n",
                  N.Label.c_str());
      Controller.expandCall(Id);
    }
  }
  std::printf("replays performed: %llu, events traced: %llu\n",
              (unsigned long long)Controller.stats().Replays,
              (unsigned long long)Controller.stats().EventsTraced);

  // Emit the dynamic graph (Fig 4.1's picture) for Graphviz.
  std::string Dot = Controller.graph().dot(*Prog->Ast, {Last});
  std::printf("\ndynamic program dependence graph (DOT, %zu bytes) — pipe "
              "into `dot -Tpng`:\n%s\n",
              Dot.size(), Dot.c_str());
  return 0;
}
