//===- examples/time_travel.cpp - §5.7 restoration and what-if ------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// §5.7: "Restoration of the program state ... can allow the user to
// experiment by changing the values of variables to see the effect of such
// changes on program behavior." We restore the global state at successive
// postlogs from the accumulated log, then run a what-if replay that edits
// a variable mid-interval and observe the program take the other branch.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Source = R"(
shared int temperature;

func adjust(int delta) {
  temperature = temperature + delta;
}

func main() {
  temperature = 20;
  adjust(30);
  adjust(25);
  adjust(40);
  if (temperature > 100) print(911);   // overheated!
  else print(0);
}
)";

} // namespace

int main() {
  std::printf("== PPD time travel (paper §5.7) ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Machine M(*Prog, MachineOptions());
  M.run();
  std::printf("program printed: %lld (911 means overheated)\n\n",
              (long long)M.output().back().Value);

  PpdController Controller(*Prog, M.takeLog());
  const SymbolTable &Symbols = *Prog->Symbols;
  VarId Temp = InvalidId;
  for (const VarInfo &Info : Symbols.Vars)
    if (Info.Name == "temperature")
      Temp = Info.Id;
  uint32_t Offset = Symbols.var(Temp).Offset;

  // Restoration: the accumulated postlogs reconstruct the state at each
  // point in time without re-executing anything.
  std::printf("temperature restored from accumulated postlogs:\n");
  const auto &Intervals = Controller.logIndex().intervals(0);
  for (uint32_t I = 0; I != Intervals.size(); ++I) {
    RestoredState State = Controller.restoreGlobals(0, I);
    std::printf("  after interval %u (e-block of %s): %lld\n", I,
                Prog->func(Prog->eblock(Intervals[I].EBlock).Func)
                    .Name.c_str(),
                (long long)State.Shared[Offset]);
  }

  // What-if: re-run main's interval, but cap the temperature before the
  // branch. Event numbering: each statement execution is one event.
  std::printf("\nwhat-if: force temperature = 90 right before the check\n");
  const ReplayResult Base = Controller.whatIf(0, 0, {});
  // Find the predicate event index so the override lands just before it.
  uint32_t PredicateEvent = 0;
  for (const TraceEvent &E : Base.Events.Events)
    if (E.IsPredicate)
      PredicateEvent = E.Index;
  ReplayResult Res =
      Controller.whatIf(0, 0, {{PredicateEvent, Temp, -1, 90}});
  for (const OutputRecord &O : Res.Output)
    std::printf("  what-if run printed: %lld\n", (long long)O.Value);
  std::printf("  (control flow %s the logged path)\n",
              Res.Diverged ? "diverged from" : "stayed on");
  return 0;
}
