//===- examples/message_graph.cpp - Fig 6.1 parallel dynamic graph --------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// Regenerates the paper's Fig 6.1: a parallel dynamic graph over three
// processes communicating through blocking sends — including the n3/n4/n5
// triple (send, receive, sender-unblock) and the zero-event internal edge
// e4, plus the ordering queries §6.3 builds on.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "pardyn/ParallelDynamicGraph.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Source = R"(
shared int SV;
chan toB;
chan toC;

func procB() {
  int v = recv(toB);       // Fig 6.1's n4: receives P1's message
  SV = SV + v;
  send(toC, v * 2);
}

func procC() {
  int w = recv(toC);
  print(SV + w);
}

func main() {            // process P1
  spawn procB();
  spawn procC();
  SV = 1;
  send(toB, 10);           // blocking send: n3 ... unblocked at n5
}
)";

} // namespace

int main() {
  std::printf("== PPD parallel dynamic graph (Fig 6.1) ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  // Pick a schedule where the send actually blocks (sender ahead of
  // receiver), reproducing the figure's n3/n4/n5 structure.
  MachineOptions MOpts;
  for (uint64_t Seed = 1; Seed < 64; ++Seed) {
    MOpts.Seed = Seed;
    Machine Trial(*Prog, MOpts);
    Trial.run();
    bool Blocked = false;
    for (const LogRecord &R : Trial.log().Procs[0].Records)
      if (R.Kind == LogRecordKind::SyncEvent &&
          R.Sync == SyncKind::ChanSendUnblock)
        Blocked = true;
    if (!Blocked)
      continue;

    std::printf("seed %llu: main's send blocked (Fig 6.1's n3/n5 pair)\n\n",
                (unsigned long long)Seed);
    ParallelDynamicGraph G(Trial.log(), Prog->Symbols->NumSharedVars);

    for (uint32_t Pid = 0; Pid != G.numProcs(); ++Pid) {
      std::printf("process %u sync nodes:", Pid);
      for (const SyncNode &N : G.nodes(Pid))
        std::printf(" %s", syncKindName(N.Kind));
      std::printf("\n");
    }

    // e4: the sender's internal edge between send and unblock is empty.
    for (uint32_t I = 0; I != G.nodes(0).size(); ++I) {
      if (G.nodes(0)[I].Kind != SyncKind::ChanSendUnblock)
        continue;
      const InternalEdge &E4 = G.edge({0, I});
      std::printf("\nsender's edge into the unblock node carries %u reads / "
                  "%u writes (the paper's zero-event e4)\n",
                  E4.Reads.size(), E4.Writes.size());
    }

    // Ordering queries: P1's write of SV happens-before procB's update,
    // which happens-before procC's read.
    std::printf("\nhappens-before samples:\n");
    std::printf("  main.send -> procB.recv: %s\n",
                G.happensBefore({0, 2}, {1, 1}) ? "yes" : "no");
    std::printf("  procB.send -> procC.recv: %s\n",
                G.happensBefore({1, 2}, {2, 1}) ? "yes" : "no");
    std::printf("  main.send -> procC.recv (transitively): %s\n",
                G.happensBefore({0, 2}, {2, 1}) ? "yes" : "no");

    std::printf("\nparallel dynamic graph (DOT, Fig 6.1 style):\n%s\n",
                G.dot(*Prog->Ast).c_str());
    return 0;
  }
  std::printf("no schedule in the sweep blocked the sender; rerun\n");
  return 1;
}
