//===- examples/sync_units.cpp - Fig 5.3 simplified static graph ----------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// Regenerates the paper's Fig 5.3: the simplified static program
// dependence graph of subroutine foo3 (branching vs non-branching nodes)
// and its synchronization units (Def 5.1), including the overlap the paper
// points out (edges shared between units) and the shared-variable
// prelogging decision per unit (§5.5).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "lang/AstPrinter.h"

#include <cstdio>

using namespace ppd;

namespace {

/// Fig 5.3's foo3, transcribed to PPL, plus a semaphore-bearing sibling to
/// show multi-unit partitioning.
const char *Source = R"(
shared int SV;
sem m = 1;

func foo3(int a, int b, int p, int q) {
  int r = 0;
  if (p == 1) {
    if (q == 1) {
      r = 1;
    } else {
      r = 2;
    }
  } else {
    SV = a + b + SV;    // the shared access behind two branches
    r = 3;
  }
  return r;
}

func locked(int a) {
  int x = 0;
  P(m);
  x = SV + a;
  V(m);
  SV = SV - x;
  return x;
}

func main() {
  print(foo3(1, 2, 3, 4));
  print(locked(5));
}
)";

} // namespace

int main() {
  std::printf("== PPD simplified static graph & synchronization units "
              "(Fig 5.3) ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  for (const auto &F : Prog->Ast->Funcs) {
    const SimplifiedStaticGraph &Simp = *Prog->Simplified[F->Index];
    const Cfg &G = *Prog->Cfgs[F->Index];
    std::printf("function %s: %zu synchronization unit(s)\n",
                F->Name.c_str(), Simp.units().size());
    for (const SyncUnit &U : Simp.units()) {
      std::string StartLabel =
          U.Start == Cfg::EntryId
              ? "ENTRY"
              : AstPrinter::summarize(*Prog->Ast->stmt(G.node(U.Start).Stmt));
      std::printf("  unit %u starts at %-22s members=%zu shared-prelog={",
                  U.Id, StartLabel.c_str(), U.Members.size());
      for (size_t I = 0; I != U.SharedReads.size(); ++I)
        std::printf("%s%s", I ? ", " : "",
                    Prog->Symbols->var(U.SharedReads[I]).Name.c_str());
      std::printf("}\n");
    }
    std::printf("\n");
  }

  std::printf("the paper's observation: foo3 needs exactly one additional "
              "prelog for SV\nat its entry unit, because SV may be read on "
              "the p!=1 path; `locked` logs SV\nonly in the units that can "
              "actually read it.\n\n");

  const FuncDecl *Foo3 = Prog->Ast->findFunc("foo3");
  std::printf("simplified static graph of foo3 (DOT, Fig 5.3 style):\n%s\n",
              Prog->Simplified[Foo3->Index]->dot(*Prog->Ast).c_str());
  return 0;
}
