//===- examples/case_study.cpp - A complete debugging session -------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// The paper's §1 narrative, end to end: a parallel program produces a
// wrong answer only under some schedules. Cyclic debugging is hopeless —
// re-running changes the interleaving. PPD instead:
//
//   1. runs once, generating the log;
//   2. certifies whether the instance raced (§6.4) — here it did;
//   3. starts flowback at the wrong print and walks the *actual* causal
//      chain backwards, across process boundaries, to the unprotected
//      update (§6.3);
//   4. confirms the diagnosis with a what-if replay (§5.7);
//   5. verifies the fixed program is certified race-free and correct
//      under the same schedules.
//
// The bug: `audit` reads `total` and `count` without taking the lock the
// writers use — a classic inconsistent-snapshot race.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/DebugSession.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Buggy = R"(
shared int total;
shared int count;
sem lock = 1;
chan done;

func record(int samples, int value) {
  int i = 0;
  for (i = 0; i < samples; i = i + 1) {
    P(lock);
    total = total + value;
    count = count + 1;
    V(lock);
  }
  send(done, 1);
}

func audit() {
  // BUG: reads the pair without P(lock) — total and count can be from
  // different moments.
  int t = total;
  int c = count;
  send(done, t - c * 4);   // every sample is worth 4: should be 0
}

func main() {
  spawn record(25, 4);
  spawn audit();
  int drift = recv(done);
  int other = recv(done);
  if (other != 1) drift = other;
  print(drift);
}
)";

const char *Fixed = R"(
shared int total;
shared int count;
sem lock = 1;
chan done;

func record(int samples, int value) {
  int i = 0;
  for (i = 0; i < samples; i = i + 1) {
    P(lock);
    total = total + value;
    count = count + 1;
    V(lock);
  }
  send(done, 1);
}

func audit() {
  P(lock);
  int t = total;
  int c = count;
  V(lock);
  send(done, t - c * 4);
}

func main() {
  spawn record(25, 4);
  spawn audit();
  int drift = recv(done);
  int other = recv(done);
  if (other != 1) drift = other;
  print(drift);
}
)";

int64_t runOnce(const CompiledProgram &Prog, uint64_t Seed,
                ExecutionLog *LogOut = nullptr) {
  MachineOptions MOpts;
  MOpts.Seed = Seed;
  MOpts.Quantum = 3;
  Machine M(Prog, MOpts);
  M.run();
  int64_t Value = M.output().empty() ? -999 : M.output().back().Value;
  if (LogOut)
    *LogOut = M.takeLog();
  return Value;
}

} // namespace

int main() {
  std::printf("== PPD case study: an inconsistent-snapshot race ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Buggy, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // 1. The failure is schedule dependent — the cyclic-debugging trap.
  std::printf("step 1: the symptom appears only under some schedules\n");
  uint64_t BadSeed = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    int64_t Drift = runOnce(*Prog, Seed);
    if (Drift != 0 && BadSeed == 0)
      BadSeed = Seed;
  }
  if (!BadSeed) {
    std::printf("  (no schedule in the sweep exposed the bug; rerun)\n");
    return 1;
  }
  std::printf("  seed %llu prints a nonzero audit drift\n\n",
              (unsigned long long)BadSeed);

  // 2. One logged run of the bad schedule; the debugging phase needs
  //    nothing else.
  ExecutionLog Log;
  int64_t Drift = runOnce(*Prog, BadSeed, &Log);
  std::printf("step 2: logged run, drift = %lld; log = %zu bytes\n\n",
              (long long)Drift, Log.byteSize());

  PpdController Controller(*Prog, std::move(Log));
  DebugSession Session(*Prog, Controller);

  // 3. Certify the race. This alone names the bug's variables.
  std::printf("step 3: race certification (Def 6.4)\n%s\n",
              Session.execute("races").c_str());

  // 4. Flowback from audit's send: its reads resolve across processes,
  //    flagging the racy sources.
  std::printf("step 4: flowback from the audit process (pid 2)\n");
  std::printf("%s", Session.execute("where 2").c_str());
  std::printf("%s", Session.execute("back").c_str());
  std::printf("\n");

  // 5. What-if (§5.7): force the snapshot the audit *should* have seen.
  //    Consistent values ⇒ drift 0, confirming the diagnosis.
  std::printf("step 5: what-if — give audit a consistent snapshot\n");
  VarId Total = InvalidId, Count = InvalidId, TLocal = InvalidId,
        CLocal = InvalidId;
  for (const VarInfo &Info : Prog->Symbols->Vars) {
    if (Info.Name == "total")
      Total = Info.Id;
    if (Info.Name == "count")
      Count = Info.Id;
    if (Info.Name == "t")
      TLocal = Info.Id;
    if (Info.Name == "c")
      CLocal = Info.Id;
  }
  ReplayResult WhatIf =
      Controller.whatIf(2, 0, {{0, Total, -1, 40}, {0, Count, -1, 10}});
  int64_t T = WhatIf.RootSlots[Prog->Symbols->var(TLocal).Offset];
  int64_t C = WhatIf.RootSlots[Prog->Symbols->var(CLocal).Offset];
  std::printf("  audit's snapshot becomes t=%lld c=%lld, so it would send "
              "%lld (0 = consistent)\n\n",
              (long long)T, (long long)C, (long long)(T - C * 4));

  // 6. The fix: take the lock around the snapshot.
  std::printf("step 6: apply the fix and re-certify\n");
  auto FixedProg = Compiler::compile(Fixed, CompileOptions(), Diags);
  if (!FixedProg) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  bool AllZero = true;
  bool AllRaceFree = true;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    ExecutionLog FixedLog;
    int64_t FixedDrift = runOnce(*FixedProg, Seed, &FixedLog);
    AllZero &= FixedDrift == 0;
    PpdController FixedController(*FixedProg, std::move(FixedLog));
    AllRaceFree &= FixedController.detectRaces().raceFree();
  }
  std::printf("  40 schedules: drift always 0: %s; certified race-free: "
              "%s\n",
              AllZero ? "yes" : "NO", AllRaceFree ? "yes" : "NO");
  return AllZero && AllRaceFree ? 0 : 1;
}
