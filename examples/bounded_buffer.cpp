//===- examples/bounded_buffer.cpp - Cross-process flowback ---------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// A classic producer/consumer bounded buffer built from semaphores and a
// shared array. The consumer prints a suspicious value; flowback analysis
// follows the dependence *across process boundaries* (§6.3): the read of
// the shared slot resolves to the producer's write via the parallel
// dynamic graph, and the producer's interval is replayed on demand.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Controller.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Source = R"(
shared int buffer[4];
shared int head;
shared int tail;
sem slots = 4;
sem items;
sem mutex = 1;

func produce(int n) {
  int i = 0;
  for (i = 1; i <= n; i = i + 1) {
    P(slots);
    P(mutex);
    buffer[tail % 4] = i * i;     // the value under investigation
    tail = tail + 1;
    V(mutex);
    V(items);
  }
}

func main() {
  spawn produce(6);
  int got = 0;
  int i = 0;
  for (i = 0; i < 6; i = i + 1) {
    P(items);
    P(mutex);
    got = buffer[head % 4];
    head = head + 1;
    V(mutex);
    V(slots);
    print(got);
  }
}
)";

} // namespace

int main() {
  std::printf("== PPD bounded buffer: flowback across processes ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  MachineOptions MOpts;
  MOpts.Seed = 5;
  Machine M(*Prog, MOpts);
  M.run();
  std::printf("consumer printed:");
  for (const OutputRecord &O : M.output())
    std::printf(" %lld", (long long)O.Value);
  std::printf("\n\n");

  PpdController Controller(*Prog, M.takeLog());

  // The execution is properly synchronized: certify it race-free first
  // (Def 6.4) — this is what makes the logs valid for replay.
  auto Races = Controller.detectRaces();
  std::printf("race check: %s\n\n",
              Races.raceFree() ? "race-free execution instance"
                               : "RACES FOUND (unexpected!)");

  // Start at the consumer's last print and flow back to `got`, then into
  // the shared buffer and across to the producer.
  DynNodeId Last = Controller.startAtLastEvent(0);
  std::printf("flowback from the consumer's last print:\n");
  DynNodeId Node = Last;
  for (unsigned Step = 0; Step != 6 && Node != InvalidId; ++Step) {
    const DynNode &N = Controller.graph().node(Node);
    std::string ValueText =
        N.HasValue ? "   = " + std::to_string(N.Value) : std::string();
    std::printf("  [%u] (p%u) %s%s\n", Step,
                N.Pid == InvalidId ? 9u : N.Pid, N.Label.c_str(),
                ValueText.c_str());
    DynNodeId Next = InvalidId;
    for (const DynEdge &E : Controller.dependencesOf(Node)) {
      if (E.Kind != DynEdgeKind::Data && E.Kind != DynEdgeKind::CrossData)
        continue;
      const DynNode &From = Controller.graph().node(E.From);
      if (From.Kind == DynNodeKind::Entry)
        continue;
      if (E.Kind == DynEdgeKind::CrossData)
        std::printf("        (crossed a process boundary, §6.3)\n");
      Next = E.From;
      break;
    }
    Node = Next;
  }

  std::printf("\nintervals replayed on demand: %llu (out of %zu+%zu in the "
              "log)\n",
              (unsigned long long)Controller.stats().Replays,
              Controller.logIndex().intervals(0).size(),
              Controller.logIndex().intervals(1).size());
  return 0;
}
