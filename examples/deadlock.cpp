//===- examples/deadlock.cpp - Deadlock cause analysis --------------------===//
//
// Part of PPD, a reproduction of Miller & Choi (PLDI 1988).
//
// §6 notes that "the parallel dynamic graph can also help the user analyze
// the causes of deadlocks". Two processes acquire two locks in opposite
// orders; the VM detects the deadlock, and the analyzer reconstructs the
// wait-for cycle from the execution log's semaphore events.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/DeadlockAnalyzer.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ppd;

namespace {

const char *Source = R"(
sem forkA = 1;
sem forkB = 1;
chan seated;

func philosopherTwo() {
  P(forkB);
  send(seated, 2);   // rendezvous: both now hold their first fork
  P(forkA);          // ...and wait for the other's
  V(forkA);
  V(forkB);
}

func main() {
  spawn philosopherTwo();
  P(forkA);
  int who = recv(seated);
  P(forkB);
  V(forkB);
  V(forkA);
}
)";

} // namespace

int main() {
  std::printf("== PPD deadlock analysis ==\n\n");

  DiagnosticEngine Diags;
  auto Prog = Compiler::compile(Source, CompileOptions(), Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Machine M(*Prog, MachineOptions());
  RunResult Result = M.run();

  switch (Result.Outcome) {
  case RunResult::Status::Deadlock: {
    std::printf("the VM reports a deadlock after %llu steps\n\n",
                (unsigned long long)Result.Steps);
    DeadlockAnalyzer Analyzer(*Prog, M.log());
    DeadlockReport Report = Analyzer.analyze(Result.Deadlock);
    std::printf("%s", Report.str(*Prog->Ast).c_str());
    if (Report.hasCycle())
      std::printf("\nthe classic lock-ordering bug: each process holds the "
                  "fork the other needs\n");
    return 0;
  }
  case RunResult::Status::Completed:
    std::printf("no deadlock this schedule (unexpected for this demo)\n");
    return 0;
  default:
    std::printf("run ended: %s\n", Result.Error.str().c_str());
    return 1;
  }
}
